"""Deployment configuration and the compute-timing model for P3S runs.

Two kinds of time exist in an end-to-end run:

* **network time** — computed by the simulator from byte-accurate message
  sizes, link bandwidths and the fixed latency (Table 1);
* **compute time** — encryption/decryption/matching costs.  Services and
  clients advance the simulated clock by the amounts in
  :class:`ComputeTimings` (defaults are the paper's measured prototype
  values; :mod:`repro.perf.calibrate` can substitute values measured from
  *our* primitives so the whole reproduction is self-consistent).

The real cryptography still executes (correctness is enforced end to
end); the timing model just decouples simulated time from the speed of
pure-Python bignum arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..pbe.schema import AttributeSpec, MetadataSchema

__all__ = ["ComputeTimings", "P3SConfig", "default_schema"]


@dataclass(frozen=True)
class ComputeTimings:
    """Per-operation compute costs in seconds.

    Defaults follow the paper's §6.2 prototype measurements:
    PBE encrypt ≈ 30 ms, PBE match ≈ 38 ms, CP-ABE decrypt ≈ 12 ms,
    CP-ABE encrypt "fairly fast" (≈ 3 ms), baseline per-subscription
    match ≈ 0.05 ms.
    """

    pbe_encrypt: float = 0.030
    pbe_match: float = 0.038
    pbe_token_gen: float = 0.030
    cpabe_encrypt: float = 0.003
    cpabe_decrypt: float = 0.012
    pke_op: float = 0.002  # one ECIES encrypt/decrypt
    symmetric_per_byte: float = 25e-9  # ~40 MB/s bulk crypto
    baseline_match: float = 0.00005  # "simple XPath matching ... roughly .05ms"

    def symmetric(self, num_bytes: int) -> float:
        return num_bytes * self.symmetric_per_byte


def default_schema() -> MetadataSchema:
    """A 40-bit metadata space matching Table 1 (P = 40 bits).

    Ten attributes with 16 values each → 10 × 4 = 40 vector bits.
    """
    return MetadataSchema(
        [
            AttributeSpec(f"attr{i:02d}", tuple(f"v{j:02d}" for j in range(16)))
            for i in range(10)
        ]
    )


@dataclass(frozen=True)
class P3SConfig:
    """Everything needed to stand up one P3S deployment.

    Attributes mirror Table 1 where applicable; ``t_g`` is the RS
    garbage-collection grace period T_G of §4.3 ("Deletion"), and
    ``use_anonymizer`` toggles the anonymization service (the paper's
    basic privacy properties hold without it; §4.1).
    """

    param_set: str = "TOY"
    schema: MetadataSchema = field(default_factory=default_schema)
    timings: ComputeTimings = field(default_factory=ComputeTimings)
    bandwidth_bps: float = 10_000_000  # ℬ, Table 1
    lan_bandwidth_bps: float = 100_000_000  # DS→RS hop (§6.2)
    latency_s: float = 0.045  # ℓ, Table 1
    guid_bytes: int = 16
    default_ttl_s: float = 3600.0  # TTL_item default
    t_g: float = 60.0  # RS grace period T_G
    rs_gc_interval_s: float = 10.0
    use_anonymizer: bool = True
    metadata_topic: str = "p3s.metadata"
    # a repro.core.pbe_ts.SubscriptionPolicy, or None for the paper's
    # open model ("legitimate clients may, within a metadata space,
    # register any subscription", §2)
    subscription_policy: object | None = None
    # a repro.obs.Observability instance to trace/profile this deployment
    # (installed process-wide on system construction), or None: every
    # instrumentation hook stays a no-op
    obs: object | None = None
    # a repro.obs.prof sampler (StackSampler or DeterministicSampler) to
    # attach to ``obs`` on system construction — started with the
    # system, stopped by close().  Requires ``obs``; None: no profiling.
    profiler: object | None = None
    # -- delegated matching (DS-side pre-filtering; see repro.core.ds) --
    # When True, subscribers register their PBE tokens with the DS, which
    # matches publications against them (via a repro.par.MatchPool) and
    # narrows the metadata fan-out to matching subscribers.  Trades
    # interest privacy at the DS for bandwidth; delivery sets are
    # unchanged (tests/par/test_equivalence.py proves it).
    delegated_matching: bool = False
    # MatchPool size for the DS: None defers to P3S_MATCH_WORKERS (then
    # serial); values <= 1 force the serial in-process path.
    match_workers: int | None = None
    # -- durable persistence (repro.store; see docs/PERSISTENCE.md) --
    # Backend for RS items and DS registrations: "memory" (default, the
    # historical purely-in-memory behaviour), "wal", or "sqlite".  The
    # durable backends need ``data_dir``; each service gets its own
    # subtree (``<data_dir>/rs``, ``<data_dir>/ds``).
    store_backend: str = "memory"
    data_dir: str | None = None
    # 32-byte at-rest AEAD key sealing record values, or None for clear
    store_key: bytes | None = None
    # fsync every WAL append (turn off only in benchmarks/tests)
    store_fsync: bool = True
    # WAL records between automatic snapshot+compaction passes
    store_snapshot_every: int = 1024
    # -- horizontal scaling (repro.cluster; see docs/CLUSTER.md) --
    # Shard counts for the DS and RS tiers.  1/1 (default) is the
    # classic single-node topology with no cluster machinery at all;
    # anything larger builds a ClusterMap (consistent-hash rings over
    # "ds0..", "rs0..") carried in the ServiceDirectory.  Publications
    # route to the GUID's DS shard; RS items are written to
    # ``rs_replication`` ring successors and retrieval fails over
    # across them.
    ds_shards: int = 1
    rs_shards: int = 1
    rs_replication: int = 1
    # -- reliable publish (PUBACK + bounded retransmit; see docs/CHAOS.md) --
    # When True publishers wait for the DS's PUBACK and retransmit with
    # jittered exponential backoff, closing the unretried publish-cast
    # gap.  Off by default for the same reason call_timeout_s defaults
    # to None: the ack timeout holds the simulation open past
    # quiescence on loss-free runs.  The chaos runner always enables it.
    reliable_publish: bool = False
    # -- SLO engine (repro.obs.slo; see docs/OBSERVABILITY.md) --
    # A repro.obs.SloEngine to evaluate this deployment's service-level
    # objectives (delivery latency, publish-ack success, store recovery)
    # with error-budget accounting and multi-window burn-rate alerting,
    # or None: no SLO evaluation.  The chaos runner builds its own
    # engine per run; `repro slo report` feeds one from live telemetry.
    slo: object | None = None

    def with_(self, **overrides) -> "P3SConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
