"""The P3S subscriber client library.

Implements the subscription (Fig. 3) and retrieval (Fig. 4, bottom half)
protocols:

* **Subscription** — generate a symmetric key ``K_s``, PKE-encrypt
  ``(K_s, subscriber certificate, plaintext predicate)`` to the PBE-TS,
  send it via the anonymization service, and unseal the returned PBE
  token with ``K_s``.  The interest never leaves the subscriber except
  inside that encrypted request.
* **Local matching** — every PBE-encrypted metadata broadcast from the DS
  is tested against the subscriber's tokens *locally*; a match reveals
  exactly the GUID and nothing else about the metadata.
* **Retrieval** — PKE-encrypt ``(K_s, GUID)`` to the RS, send via the
  anonymizer, unseal the CP-ABE ciphertext, and decrypt it iff this
  subscriber's CP-ABE attributes satisfy the publisher's policy.  The
  recovered GUID is compared with the requested one to correlate
  request and response (§4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..abe.hybrid import HybridCPABE
from ..abe.serialize import deserialize_hybrid
from ..cluster.router import rs_replicas_for
from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import (
    DecryptionError,
    GuidMismatchError,
    RetrievalError,
    TokenRequestError,
    TransportError,
)
from ..mq.client import JmsConnection
from ..obs import profile as obs
from ..pbe.hve import HVE, HVEToken
from ..pbe.schema import Interest
from ..pbe.serialize import (
    deserialize_hve_ciphertext,
    deserialize_hve_token,
    serialize_hve_token,
)
from .ara import SubscriberCredentials
from .config import ComputeTimings
from .messages import (
    KIND_TOKEN_REG,
    KIND_TOKEN_UNREG,
    RPC_ANON_FORWARD,
    RPC_RETRIEVE,
    RPC_TOKEN_REQUEST,
    AnonEnvelope,
    EncryptedMetadata,
)
from .pbe_ts import decode_token_response, encode_token_request
from .rs import decode_retrieval_response, encode_retrieval_request

__all__ = [
    "Subscriber",
    "Delivery",
    "GuidDeduper",
    "SubscriberStats",
    "match_tokens",
    "open_delivery",
]


class GuidDeduper:
    """Bounded memory of GUIDs already matched, for duplicate suppression.

    A retransmitted (or chaos-duplicated) metadata frame matches the
    same token again and would re-run the whole retrieve→decrypt→deliver
    pipeline, handing the application the same payload twice.  GUIDs are
    unique per publication, so remembering which ones this subscriber
    already acted on makes delivery idempotent at the match boundary.
    The memory is bounded (FIFO eviction) so a long-lived subscriber
    cannot grow it without limit; the window only needs to outlast the
    network's duplicate horizon, not the subscriber's lifetime.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._seen: set[bytes] = set()
        self._order: deque[bytes] = deque()

    def seen(self, guid: bytes) -> bool:
        """Record ``guid``; True when it was already present (a duplicate)."""
        if guid in self._seen:
            return True
        self._seen.add(guid)
        self._order.append(guid)
        if len(self._order) > self.capacity:
            self._seen.discard(self._order.popleft())
        return False

    def __len__(self) -> int:
        return len(self._order)


def match_tokens(hve, tokens, ciphertext):
    """Local matching: test each held token against one broadcast.

    ``tokens`` is the subscriber's ``(interest, token)`` list; returns
    ``(guid_or_None, attempts)``.  Substrate-free — the live subscriber
    runs exactly this loop; the simulator subscriber interleaves its
    modeled per-attempt compute time but performs the same queries.
    """
    attempts = 0
    for _, token in tokens:
        attempts += 1
        guid = hve.query(token, ciphertext)
        if guid is not None:
            return guid, attempts
    return None, attempts


def open_delivery(cpabe, group, secret_key, guid, guid_bytes, ciphertext_bytes):
    """CP-ABE-decrypt one retrieved payload and verify its embedded GUID.

    Returns the application payload.  Raises :class:`DecryptionError`
    when the subscriber's attributes do not satisfy the policy, and
    :class:`GuidMismatchError` when decryption succeeds but the recovered
    GUID differs from the requested one (§4.3 correlation check).
    """
    plaintext = cpabe.decrypt(secret_key, deserialize_hybrid(group, ciphertext_bytes))
    recovered_guid, payload = plaintext[:guid_bytes], plaintext[guid_bytes:]
    if recovered_guid != guid:
        raise GuidMismatchError("recovered GUID does not match the requested one")
    return payload


@dataclass(frozen=True)
class Delivery:
    """One payload delivered to the application."""

    publication_id: int
    guid: bytes
    payload: bytes
    delivered_at: float


@dataclass
class SubscriberStats:
    """Counters for everything a subscriber observes."""

    metadata_seen: int = 0
    matches: int = 0
    non_matches: int = 0
    failed_fetches: int = 0  # expired / unknown GUID at the RS
    access_denied: int = 0  # CP-ABE attributes insufficient
    duplicates_suppressed: int = 0  # retransmitted frames dropped by GUID dedup
    # simulated times of each suppression — the chaos SLO engine turns
    # these into delivery-integrity events at their exact instants
    duplicate_suppressed_at: list[float] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)


class Subscriber:
    """One P3S subscriber endpoint."""

    def __init__(
        self,
        credentials: SubscriberCredentials,
        connection: JmsConnection,
        group: PairingGroup,
        timings: ComputeTimings,
        use_anonymizer: bool = True,
        guid_bytes: int = 16,
        metadata_topic: str = "p3s.metadata",
        on_payload: Callable[[Delivery], None] | None = None,
        local_token_source=None,
        retrieval_retries: int = 3,
        retry_delay_s: float = 0.25,
        call_timeout_s: float | None = None,
        delegate_tokens: bool = False,
    ):
        self.credentials = credentials
        self.connection = connection
        self.group = group
        self.timings = timings
        self.use_anonymizer = use_anonymizer
        self.guid_bytes = guid_bytes
        self.hve = HVE(group)
        self.cpabe = HybridCPABE(group)
        self.on_payload = on_payload
        self.local_token_source = local_token_source
        self.retrieval_retries = retrieval_retries
        self.retry_delay_s = retry_delay_s
        # Bound on each anonymized RPC round trip.  None (the default)
        # waits forever — correct on a lossless network.  Chaos runs set
        # it so a dropped request/response frame surfaces as a
        # TransportError and consumes a retry instead of wedging the
        # retrieval process.
        self.call_timeout_s = call_timeout_s
        self._dedup: GuidDeduper | None = GuidDeduper()
        # Delegated matching (opt-in, privacy trade-off — see
        # repro.core.ds): hand each minted token to the DS so it can
        # pre-filter the metadata fan-out.  Local matching still runs on
        # everything delivered, so behaviour is unchanged.
        self.delegate_tokens = delegate_tokens
        self.stats = SubscriberStats()
        self.tokens: list[tuple[Interest, HVEToken]] = []
        session = connection.create_session()
        consumer = session.create_consumer(metadata_topic)
        consumer.set_message_listener(self._on_metadata)
        self._producer = session.create_producer(metadata_topic)

    @property
    def name(self) -> str:
        return self.credentials.name

    @property
    def sim(self):
        return self.connection.sim

    @property
    def directory(self):
        return self.credentials.directory

    # -- subscription (Fig. 3) -------------------------------------------------

    def subscribe(self, interest: Interest):
        """Obtain a PBE token for ``interest``; returns the process event."""
        return self.sim.process(self._subscribe_process(interest))

    def _subscribe_process(self, interest: Interest):
        root = obs.start_span("subscribe", component=self.name)
        if self.local_token_source is not None:
            # §8 future-work configuration: mint the token locally — the
            # plaintext predicate never leaves the subscriber.
            yield self.sim.timeout(self.timings.pbe_token_gen)
            with obs.attach(root):
                token = self.local_token_source.gen_token(interest)
            self.tokens.append((interest, token))
            self._register_with_ds(token, KIND_TOKEN_REG)
            obs.end_span(root, local=True)
            return token
        session_key = SecretBox.generate_key()
        with obs.attach(root):
            body = encode_token_request(
                session_key, self.credentials.certificate, interest, self.group.zr_bytes
            )
        yield self.sim.timeout(self.timings.pke_op)
        request = self.directory.pbe_ts_public_key.encrypt(body)
        sealed = yield self._anonymized_call(
            self.directory.pbe_ts_name, RPC_TOKEN_REQUEST, request, span=root
        )
        yield self.sim.timeout(self.timings.symmetric(len(sealed)))
        try:
            token_bytes = decode_token_response(session_key, sealed)
        except (TokenRequestError, DecryptionError) as exc:
            obs.end_span(root, status="refused")
            raise TokenRequestError(f"{self.name}: token request failed: {exc}") from exc
        token = deserialize_hve_token(self.group, token_bytes)
        self.tokens.append((interest, token))
        self._register_with_ds(token, KIND_TOKEN_REG)
        obs.end_span(root, status="ok")
        return token

    def _register_with_ds(self, token: HVEToken, kind: str) -> None:
        if not self.delegate_tokens:
            return
        data = serialize_hve_token(self.group, token)
        # every DS shard may own the next publication, so the token must
        # be registered on all of them (matching compute per publication
        # still lands on exactly one shard — that is what scales)
        for broker in self.connection.broker_names:
            self._producer.send(data, len(data), headers={"p3s-kind": kind}, broker=broker)

    def unsubscribe(self, interest: Interest) -> bool:
        """Drop the local token for ``interest``.

        With local matching, unsubscribing is purely client-side: the
        token is discarded and future broadcasts stop matching.  (No party
        needs to be told — another consequence of interest privacy.)
        Under delegated matching the DS registration is withdrawn too.
        Returns whether a token was found and removed.
        """
        for index, (held, token) in enumerate(self.tokens):
            if held.constraints == interest.constraints:
                del self.tokens[index]
                self._register_with_ds(token, KIND_TOKEN_UNREG)
                return True
        return False

    # -- crash / restart (§6.1 robustness) ---------------------------------------

    def restart(self):
        """Simulate a subscriber crash + restart.

        "A restarted subscriber simply needs to (re)register with the DS
        and (re)obtain its PBE tokens from the PBE-TS" (§6.1).  Volatile
        state (tokens) is lost; the remembered interests are re-requested.
        Returns the list of re-subscription process events.
        """
        interests = [interest for interest, _ in self.tokens]
        self.tokens.clear()
        self.connection.reconnect()
        return [self.subscribe(interest) for interest in interests]

    def reconnect(self) -> None:
        """Re-register with a restarted DS (no token loss on our side)."""
        self.connection.reconnect()

    # -- metadata matching (local, on every DS broadcast) -----------------------

    def _on_metadata(self, frame) -> None:
        self.sim.process(self._match_process(frame.body, obs.extract(frame.headers)))

    def _match_process(self, envelope: EncryptedMetadata, parent=None):
        self.stats.metadata_seen += 1
        span = obs.start_span(
            "subscriber.match",
            component=self.name,
            parent=parent,
            publication_id=envelope.publication_id,
        )
        with obs.attach(span):
            ciphertext = deserialize_hve_ciphertext(self.group, envelope.hve_bytes)
        guid = None
        attempts = 0
        for _, token in self.tokens:
            yield self.sim.timeout(self.timings.pbe_match)
            attempts += 1
            with obs.attach(span):
                guid = self.hve.query(token, ciphertext)
            if guid is not None:
                break
        obs.end_span(span, matched=guid is not None, attempts=attempts)
        if guid is None:
            self.stats.non_matches += 1
            return
        self.stats.matches += 1
        if self._dedup is not None and self._dedup.seen(guid):
            # retransmitted metadata frame: the pipeline already ran (or
            # is running) for this GUID — deliver-at-most-once holds here
            self.stats.duplicates_suppressed += 1
            self.stats.duplicate_suppressed_at.append(self.sim.now)
            obs.record_op("subscriber.duplicate_suppressed")
            return
        yield from self._retrieve_process(guid, envelope.publication_id, parent=span)

    # -- retrieval (Fig. 4) ------------------------------------------------------

    def _retrieve_process(self, guid: bytes, publication_id: int, parent=None):
        # Retries cover the protocol's inherent race: a fast matcher can
        # request a payload before the DS→RS content submission lands
        # (the paper's t_f/t_b decomposition takes max() for this reason).
        span = obs.start_span(
            "subscriber.retrieve",
            component=self.name,
            parent=parent,
            publication_id=publication_id,
        )
        ciphertext_bytes = None
        attempt = 0
        # the GUID's RS replica set: retries rotate through it, so a
        # dead or partitioned replica costs one retry, not the item
        replicas = rs_replicas_for(self.directory, guid)
        for attempt in range(self.retrieval_retries + 1):
            if attempt:
                yield self.sim.timeout(self.retry_delay_s)
            rs_name, rs_public_key = replicas[attempt % len(replicas)]
            session_key = SecretBox.generate_key()
            body = encode_retrieval_request(session_key, guid)
            yield self.sim.timeout(self.timings.pke_op)
            request = rs_public_key.encrypt(body)
            try:
                sealed = yield self._anonymized_call(
                    rs_name, RPC_RETRIEVE, request, span=span
                )
            except TransportError:
                # lost request or response (call_timeout_s fired): the
                # same retry budget covers wire loss and the store race
                continue
            yield self.sim.timeout(self.timings.symmetric(len(sealed)))
            try:
                ciphertext_bytes = decode_retrieval_response(session_key, sealed)
                break
            except (RetrievalError, DecryptionError):
                continue
        if ciphertext_bytes is None:
            self.stats.failed_fetches += 1
            obs.end_span(span, status="failed_fetch", attempts=attempt + 1)
            return
        step = obs.start_span("abe.decrypt", component=self.name, parent=span)
        yield self.sim.timeout(
            self.timings.cpabe_decrypt + self.timings.symmetric(len(ciphertext_bytes))
        )
        try:
            with obs.attach(step):
                payload = open_delivery(
                    self.cpabe,
                    self.group,
                    self.credentials.cpabe_secret_key,
                    guid,
                    self.guid_bytes,
                    ciphertext_bytes,
                )
        except GuidMismatchError:
            self.stats.access_denied += 1  # treat as undecodable
            obs.end_span(step)
            obs.end_span(span, status="guid_mismatch", attempts=attempt + 1)
            return
        except DecryptionError:
            self.stats.access_denied += 1
            obs.end_span(step, status="denied")
            obs.end_span(span, status="access_denied", attempts=attempt + 1)
            return
        obs.end_span(step)
        delivery = Delivery(
            publication_id=publication_id,
            guid=guid,
            payload=payload,
            delivered_at=self.sim.now,
        )
        self.stats.deliveries.append(delivery)
        obs.end_span(
            obs.start_span(
                "deliver",
                component=self.name,
                parent=span,
                publication_id=publication_id,
                bytes=len(payload),
            )
        )
        obs.end_span(span, status="delivered", attempts=attempt + 1)
        if self.on_payload is not None:
            self.on_payload(delivery)

    # -- transport helper ------------------------------------------------------------

    def _anonymized_call(self, dst: str, msg_type: str, request: bytes, span=None):
        headers = obs.inject({}, span)
        if self.use_anonymizer and self.directory.anonymizer_name:
            envelope = AnonEnvelope(dst=dst, inner_type=msg_type, inner_payload=request)
            return self.connection.endpoint.call(
                self.directory.anonymizer_name,
                RPC_ANON_FORWARD,
                envelope,
                envelope.wire_size,
                headers=headers,
                timeout_s=self.call_timeout_s,
            )
        return self.connection.endpoint.call(
            dst, msg_type, request, len(request), headers=headers,
            timeout_s=self.call_timeout_s,
        )
