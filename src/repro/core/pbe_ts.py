"""Predicate-Based Encryption Token Server (PBE-TS).

Paper §4.1/§4.3 (Fig. 3): the PBE-TS "receives cleartext subscription
interest (predicate) from the subscriber, and returns the corresponding
PBE token".  The request arrives PKE-encrypted under the PBE-TS public
key as the 3-tuple ``(K_s, subscriber certificate, plaintext predicate)``
— normally via the anonymization service, so the PBE-TS sees predicates
but cannot bind them to subscriber identities.  The token is returned
super-encrypted under ``K_s``.

The server deliberately records every plaintext predicate it sees
(:attr:`observed_predicates`): the paper calls out "the PBE-TS sees the
plaintext predicate" as a known exposure, and the privacy analysis in
:mod:`repro.privacy.analysis` asserts over exactly this observation log.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass

from ..crypto import precompute
from ..crypto.pke import PKEKeyPair
from ..crypto.signing import Certificate, VerifyKey
from ..crypto.symmetric import SecretBox
from ..errors import CertificateError, DecryptionError, SchemaError, TokenRequestError
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..net.channel import SecureChannelLayer
from ..obs import profile as obs
from ..pbe.hve import HVE, HVEMasterKey
from ..pbe.schema import ANY, Interest, MetadataSchema
from ..pbe.serialize import serialize_hve_token
from .config import ComputeTimings
from .messages import RPC_TOKEN_REQUEST

__all__ = [
    "PBETokenServer",
    "SubscriptionPolicy",
    "TokenIssuer",
    "encode_token_request",
    "decode_token_response",
]

_OK = b"\x01"
_ERR = b"\x00"


@dataclass(frozen=True)
class SubscriptionPolicy:
    """Subscription control (paper §8: "there is no subscription control
    policy enforced on the subscribers" — listed as a shortcoming; this is
    the natural enforcement point).

    * ``min_constrained_attributes`` rejects overly broad predicates (the
      paper already assumes honest clients never subscribe all-wildcard;
      this makes it policy).
    * ``allowed_attributes`` restricts which attributes a predicate may
      constrain.
    * ``max_tokens_per_subject`` throttles token accumulation per
      certificate pseudonym — a rate-limit counterpart to the
      time-stamped-token mitigation against the §6.1 accumulation attack.
    """

    min_constrained_attributes: int = 1
    allowed_attributes: frozenset[str] | None = None
    max_tokens_per_subject: int | None = None

    def check(self, subject: str, interest: Interest, issued_so_far: int) -> None:
        """Raise :class:`TokenRequestError` when the request violates policy."""
        constrained = [
            name for name, value in interest.constraints.items() if value is not ANY
        ]
        if len(constrained) < self.min_constrained_attributes:
            raise TokenRequestError(
                f"predicate constrains {len(constrained)} attribute(s); "
                f"policy requires at least {self.min_constrained_attributes}"
            )
        if self.allowed_attributes is not None:
            forbidden = set(constrained) - self.allowed_attributes
            if forbidden:
                raise TokenRequestError(
                    f"predicate constrains disallowed attributes: {sorted(forbidden)}"
                )
        if self.max_tokens_per_subject is not None and issued_so_far >= self.max_tokens_per_subject:
            raise TokenRequestError(
                f"subject {subject!r} exhausted its token quota "
                f"({self.max_tokens_per_subject})"
            )


def encode_token_request(
    session_key: bytes, certificate: Certificate, interest: Interest, zr_bytes: int
) -> bytes:
    """Plaintext body of the 3-tuple (K_s, certificate, predicate)."""
    cert_bytes = certificate.to_bytes(zr_bytes)
    body = {
        "ks": session_key.hex(),
        "cert": cert_bytes.hex(),
        "interest": interest.to_json(),
    }
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_token_response(session_key: bytes, sealed: bytes) -> bytes:
    """Unseal the PBE-TS reply; returns serialized token bytes.

    Raises :class:`TokenRequestError` if the server reported a failure.
    """
    plaintext = SecretBox(session_key).open(sealed)
    if not plaintext or plaintext[:1] != _OK:
        raise TokenRequestError(
            f"PBE-TS refused token: {plaintext[1:].decode('utf-8', 'replace') or 'unknown error'}"
        )
    return plaintext[1:]


class TokenIssuer:
    """The PBE-TS's substrate-free token-minting engine.

    Holds the HVE master material, the certificate trust root, the
    subscription policy, the per-subject quota counters, and the
    honest-but-curious observation logs.  The simulator service
    interleaves its compute-time yields between these calls; the live
    asyncio service (:mod:`repro.live.services`) calls them back to
    back — both substrates mint identical tokens for identical requests
    because this is the only implementation.
    """

    def __init__(
        self,
        hve: HVE,
        master_key: HVEMasterKey,
        schema: MetadataSchema,
        ara_verify_key: VerifyKey,
        subscription_policy: SubscriptionPolicy | None = None,
    ):
        self.hve = hve
        self.schema = schema
        self.subscription_policy = subscription_policy
        self._master = master_key
        self._ara_verify_key = ara_verify_key
        # Token generation is nothing but fixed-base scalar multiplications
        # of g; warm its comb table so even the first request is fast.
        precompute.warm_generator(hve.group)
        # What this (honest-but-curious) server inevitably learns:
        self.observed_predicates: list[tuple[float, str]] = []
        self.observed_subjects: list[str] = []  # certificate pseudonyms
        self.tokens_issued = 0
        self._issued_by_subject: dict[str, int] = defaultdict(int)

    def open_request(
        self, pke: PKEKeyPair, payload: bytes
    ) -> tuple[bytes, Certificate, Interest]:
        """Decrypt and parse one token request under the server's PKE key."""
        try:
            body = json.loads(pke.decrypt(payload).decode("utf-8"))
            session_key = bytes.fromhex(body["ks"])
            certificate = Certificate.from_bytes(
                bytes.fromhex(body["cert"]), self.hve.group.zr_bytes
            )
            interest = Interest.from_json(body["interest"])
        except (DecryptionError, ValueError, KeyError) as exc:
            raise TokenRequestError(f"malformed token request: {exc}") from exc
        return session_key, certificate, interest

    def authorize(self, certificate: Certificate, interest: Interest, now: float) -> None:
        """Validate the certificate, log the observation, enforce policy.

        Raises :class:`CertificateError` / :class:`TokenRequestError` on
        refusal; the predicate is logged as soon as the certificate
        checks out (the paper's exposure: the PBE-TS *sees* it either way).
        """
        certificate.validate(self._ara_verify_key, "subscriber", now=now)
        self.observed_subjects.append(certificate.subject)
        self.observed_predicates.append((now, interest.to_json()))
        if self.subscription_policy is not None:
            self.subscription_policy.check(
                certificate.subject,
                interest,
                self._issued_by_subject[certificate.subject],
            )

    def mint(self, subject: str, interest: Interest) -> bytes:
        """Generate and serialize the PBE token; counts against quota."""
        token = self.hve.gen_token(self._master, self.schema.encode_interest(interest))
        token_bytes = serialize_hve_token(self.hve.group, token)
        self.tokens_issued += 1
        self._issued_by_subject[subject] += 1
        return token_bytes


class PBETokenServer:
    """The PBE-TS service process on the simulator substrate."""

    def __init__(
        self,
        host: Host,
        hve: HVE,
        master_key: HVEMasterKey,
        schema: MetadataSchema,
        ara_verify_key: VerifyKey,
        timings: ComputeTimings,
        subscription_policy: SubscriptionPolicy | None = None,
    ):
        self.host = host
        self.hve = hve
        self.schema = schema
        self.timings = timings
        self.issuer = TokenIssuer(
            hve, master_key, schema, ara_verify_key, subscription_policy
        )
        self.pke = PKEKeyPair(hve.group)
        self.rpc = RpcEndpoint(SecureChannelLayer(host))
        self.rpc.serve(RPC_TOKEN_REQUEST, self._handle_token_request)
        self.observed_sources: list[str] = []  # transport-level view

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.host.network.sim

    @property
    def subscription_policy(self) -> SubscriptionPolicy | None:
        return self.issuer.subscription_policy

    # engine observation logs, surfaced under their historical names
    @property
    def observed_predicates(self) -> list[tuple[float, str]]:
        return self.issuer.observed_predicates

    @property
    def observed_subjects(self) -> list[str]:
        return self.issuer.observed_subjects

    @property
    def tokens_issued(self) -> int:
        return self.issuer.tokens_issued

    def start(self) -> None:
        self.rpc.start()

    # -- request handling (generator: advances simulated compute time) --------

    def _handle_token_request(self, src: str, message):
        self.observed_sources.append(src)  # with the anonymizer this is never a subscriber
        span = obs.start_span(
            "pbe_ts.token_request",
            component=self.name,
            parent=obs.extract(message.headers),
        )
        yield self.sim.timeout(self.timings.pke_op)
        try:
            with obs.attach(span):
                session_key, certificate, interest = self.issuer.open_request(
                    self.pke, message.payload
                )
        except TokenRequestError:
            obs.end_span(span, status="malformed")
            return (_ERR, 1)  # cannot even recover K_s; reply with a bare error
        status = "ok"
        try:
            self.issuer.authorize(certificate, interest, now=self.sim.now)
            yield self.sim.timeout(self.timings.pbe_token_gen)
            with obs.attach(span):
                token_bytes = self.issuer.mint(certificate.subject, interest)
            reply = _OK + token_bytes
        except (CertificateError, SchemaError, TokenRequestError) as exc:
            reply = _ERR + str(exc).encode("utf-8")
            status = "refused"
        yield self.sim.timeout(self.timings.symmetric(len(reply)))
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status)
        return (sealed, len(sealed))
