"""Deployment orchestration: stand up a full P3S system in the simulator.

:class:`P3SSystem` builds the topology of Fig. 1 — DS, RS, PBE-TS,
anonymization service, any number of publishers and subscribers — wires
all keying material through the ARA, and exposes convenience accessors
for experiments (deliveries per publication, per-component observation
logs, the eavesdropper wire trace).

Typical use::

    system = P3SSystem()
    alice = system.add_subscriber("alice", attributes={"org:acme"})
    system.subscribe(alice, Interest({"topic": "m&a"}))
    bob = system.add_publisher("bob")
    record = bob.publish({"topic": "m&a", ...}, b"payload", policy="org:acme")
    system.run()
    deliveries = system.deliveries_for(record)

Horizontal scaling (:mod:`repro.cluster`, docs/CLUSTER.md): with
``P3SConfig(ds_shards=K, rs_shards=M, rs_replication=N)`` the same call
builds K dissemination shards and M repository shards behind a
:class:`~repro.cluster.ClusterMap` carried in the ServiceDirectory.
``system.ds`` / ``system.rs`` keep pointing at the first shard, so
single-node code and tests run unchanged; ``system.ds_shards`` /
``system.rs_shards`` hold the full tier.
"""

from __future__ import annotations

import os

from ..cluster import ClusterMap, MembershipTable, shard_names
from ..cluster.rebalance import HandoffReport, copy_registrations, handoff_items
from ..crypto.group import PairingGroup
from ..mq.client import JmsConnection
from ..net.network import Network
from ..net.simulator import Simulator
from ..pbe.hve import HVE
from ..pbe.schema import Interest
from ..store import StorageEngine, open_engine
from .anonymizer import AnonymizationService
from .ara import RegistrationAuthority
from .config import P3SConfig
from .ds import DisseminationServer
from .pbe_ts import PBETokenServer
from .publisher import PublicationRecord, Publisher
from .rs import RepositoryServer
from .subscriber import Delivery, Subscriber

__all__ = ["P3SSystem"]

HEARTBEAT_INTERVAL_S = 1.0
FAILURE_TIMEOUT_S = 3.5  # > 3 missed beats before a shard is declared dead


class P3SSystem:
    """One fully-wired P3S deployment inside a discrete-event simulation."""

    def __init__(self, config: P3SConfig | None = None):
        self.config = config or P3SConfig()
        self.sim = Simulator()
        self.obs = self.config.obs
        self.profiler = self.config.profiler
        if self.profiler is not None and self.obs is None:
            raise ValueError("P3SConfig(profiler=...) requires obs=Observability()")
        if self.obs is not None:
            # bind span timestamps to this simulator's clock and become
            # the process-wide sink for the instrumentation hooks
            self.obs.bind_clock(lambda: self.sim.now)
            if self.profiler is not None:
                self.obs.profiler = self.profiler
                self.profiler.start()
            self.obs.install()
        self.network = Network(
            self.sim,
            default_bandwidth_bps=self.config.bandwidth_bps,
            latency_s=self.config.latency_s,
        )
        self.group = PairingGroup(self.config.param_set)
        self.ara = RegistrationAuthority(self.group, self.config.schema)

        ds_names = shard_names("ds", self.config.ds_shards)
        rs_names = shard_names("rs", self.config.rs_shards)
        replication = max(1, min(self.config.rs_replication, len(rs_names)))
        self.cluster: ClusterMap | None = None
        if len(ds_names) > 1 or len(rs_names) > 1 or replication > 1:
            self.cluster = ClusterMap(
                ds_names=list(ds_names),
                rs_names=list(rs_names),
                rs_replication=replication,
            )

        # --- third parties (Fig. 1) ---
        self.rs_shards: dict[str, RepositoryServer] = {}
        for name in rs_names:
            self.rs_shards[name] = RepositoryServer(
                self.network.add_host(name),
                self.group,
                self.config.timings,
                t_g=self.config.t_g,
                gc_interval_s=self.config.rs_gc_interval_s,
                engine=self._open_store(name),
            )
        self.rs = self.rs_shards[rs_names[0]]

        self.ds_shards: dict[str, DisseminationServer] = {}
        for name in ds_names:
            ds_host = self.network.add_host(name)
            for rs_name in rs_names:
                ds_host.set_link_bandwidth(rs_name, self.config.lan_bandwidth_bps)
            self.ds_shards[name] = DisseminationServer(
                ds_host,
                rs_names[0],
                self.config.metadata_topic,
                group=self.group,
                timings=self.config.timings,
                match_workers=self.config.match_workers,
                store=self._open_store(name),
                cluster=self.cluster,
            )
        self.ds = self.ds_shards[ds_names[0]]

        hve = HVE(self.group)
        master_key, verify_key = self.ara.provision_pbe_ts()
        self.pbe_ts = PBETokenServer(
            self.network.add_host("pbe-ts"),
            hve,
            master_key,
            self.config.schema,
            verify_key,
            self.config.timings,
            subscription_policy=self.config.subscription_policy,
        )
        self.anonymizer = AnonymizationService(self.network.add_host("anon"))

        self.ara.install_service("ds", ds_names[0])
        self.ara.install_service("rs", rs_names[0], self.rs.pke.public)
        self.ara.install_service("pbe_ts", "pbe-ts", self.pbe_ts.pke.public)
        self.ara.install_service("anonymizer", "anon")
        if self.cluster is not None:
            for name, rs in self.rs_shards.items():
                self.cluster.rs_public_keys[name] = rs.pke.public
            self.ara.directory.cluster = self.cluster

        # membership: every shard joins at epoch; a daemon heartbeat
        # process keeps the table current on sharded deployments and
        # routes new publications away from dead DS shards
        self.membership = MembershipTable(failure_timeout_s=FAILURE_TIMEOUT_S)
        for name in ds_names:
            self.membership.join(name, "ds", now=self.sim.now)
        for name in rs_names:
            self.membership.join(name, "rs", now=self.sim.now)
        if self.cluster is not None:
            self.sim.process(self._heartbeat_loop())

        for rs in self.rs_shards.values():
            rs.start()
        for ds in self.ds_shards.values():
            ds.start()
        self.pbe_ts.start()
        self.anonymizer.start()

        self.publishers: dict[str, Publisher] = {}
        self.subscribers: dict[str, Subscriber] = {}

    def _open_store(self, role: str) -> StorageEngine | None:
        """One storage engine per durable service, under ``data_dir/<role>``.

        With the default ``memory`` backend returns None so the service
        constructs its own MemoryEngine — exactly the historical
        behaviour.  Shard names ("ds0", "rs1", …) each get their own
        subtree, so shards never share store files.
        """
        backend = self.config.store_backend
        if backend == "memory":
            return None
        if self.config.data_dir is None:
            raise ValueError(f"store_backend={backend!r} requires data_dir")
        root = os.path.join(self.config.data_dir, role)
        path = os.path.join(root, "store.db") if backend == "sqlite" else root
        if backend == "sqlite":
            os.makedirs(root, exist_ok=True)
        return open_engine(
            backend,
            path,
            key=self.config.store_key,
            fsync=self.config.store_fsync,
            snapshot_every=self.config.store_snapshot_every,
            component=role,
        )

    # -- membership / failure detection (repro.cluster) ------------------------

    def _heartbeat_loop(self):
        """Daemon process: shards that are up heartbeat; silent ones are
        swept dead and removed from the DS routing ring until they beat
        again.  The RS ring is deliberately left static — replication
        plus retrieval failover covers a dead replica, and churning the
        ring on every flap would force rebalances mid-failure."""
        while True:
            yield self.sim.timeout(HEARTBEAT_INTERVAL_S, daemon=True)
            now = self.sim.now
            for name, ds in self.ds_shards.items():
                if not ds.crashed:
                    self.membership.heartbeat(name, now)
            for name, rs in self.rs_shards.items():
                if not rs.crashed:
                    self.membership.heartbeat(name, now)
            for name in self.membership.sweep(now):
                if name in self.ds_shards:
                    self.cluster.remove_ds(name)
            for name in self.membership.alive("ds"):
                if name in self.ds_shards and name not in self.cluster.ds_names:
                    self.cluster.add_ds(name)

    # -- elastic topology (repro.cluster.rebalance) ----------------------------

    def _ensure_cluster(self) -> ClusterMap:
        """Attach a ClusterMap to a classic single-node deployment the
        first time its topology grows; existing credentials see it
        immediately (the directory is embedded by reference)."""
        if self.cluster is None:
            self.cluster = ClusterMap(
                ds_names=list(self.ds_shards),
                rs_names=list(self.rs_shards),
                rs_replication=max(1, self.config.rs_replication),
                rs_public_keys={
                    name: rs.pke.public for name, rs in self.rs_shards.items()
                },
            )
            self.ara.directory.cluster = self.cluster
            for ds in self.ds_shards.values():
                ds.cluster = self.cluster
            self.sim.process(self._heartbeat_loop())
        return self.cluster

    def add_ds_shard(self, name: str | None = None) -> DisseminationServer:
        """Grow the DS tier by one shard, live.

        The joiner bootstraps its token/subscription tables from an
        existing shard (:func:`~repro.cluster.rebalance.copy_registrations`),
        every connected client learns the new broker, and the routing
        ring picks it up — so it starts owning its share of *new*
        publications immediately.
        """
        cluster = self._ensure_cluster()
        name = name or f"ds{len(self.ds_shards)}"
        if name in self.ds_shards:
            raise ValueError(f"DS shard {name!r} already exists")
        host = self.network.add_host(name)
        for rs_name in self.rs_shards:
            host.set_link_bandwidth(rs_name, self.config.lan_bandwidth_bps)
        ds = DisseminationServer(
            host,
            self.ds.rs_name,
            self.config.metadata_topic,
            group=self.group,
            timings=self.config.timings,
            match_workers=self.config.match_workers,
            store=self._open_store(name),
            cluster=cluster,
        )
        ds.start()
        self.ds_shards[name] = ds
        copy_registrations(self.ds, ds)
        cluster.add_ds(name)
        self.membership.join(name, "ds", now=self.sim.now)
        for subscriber in self.subscribers.values():
            subscriber.connection.add_broker(name)
        for publisher in self.publishers.values():
            publisher.connection.add_broker(name)
        return ds

    def add_rs_shard(
        self, name: str | None = None
    ) -> tuple[RepositoryServer, HandoffReport]:
        """Grow the RS tier by one shard and rebalance.

        Existing items are handed off through
        :func:`~repro.cluster.rebalance.handoff_items` so only the key
        range the new ring assigns to the joiner (≈ 1/n of the keyspace)
        actually moves.
        """
        cluster = self._ensure_cluster()
        name = name or f"rs{len(self.rs_shards)}"
        if name in self.rs_shards:
            raise ValueError(f"RS shard {name!r} already exists")
        rs = RepositoryServer(
            self.network.add_host(name),
            self.group,
            self.config.timings,
            t_g=self.config.t_g,
            gc_interval_s=self.config.rs_gc_interval_s,
            engine=self._open_store(name),
        )
        for ds in self.ds_shards.values():
            ds.host.set_link_bandwidth(name, self.config.lan_bandwidth_bps)
        rs.start()
        self.rs_shards[name] = rs
        cluster.add_rs(name, rs.pke.public)
        self.membership.join(name, "rs", now=self.sim.now)
        report = handoff_items(
            {shard: server.store for shard, server in self.rs_shards.items()},
            cluster.rs_ring,
            cluster.rs_replication,
        )
        return rs, report

    # -- participants -----------------------------------------------------------

    def add_publisher(self, name: str) -> Publisher:
        credentials = self.ara.register_publisher(name)
        connection = JmsConnection(
            self.network.add_host(name), list(self.ds_shards)
        )
        connection.start()
        publisher = Publisher(
            credentials,
            connection,
            self.group,
            self.config.timings,
            guid_bytes=self.config.guid_bytes,
            reliable_publish=self.config.reliable_publish,
        )
        self.publishers[name] = publisher
        return publisher

    def add_subscriber(
        self,
        name: str,
        attributes: set[str],
        on_payload=None,
        embedded_token_source: bool = False,
        delegate_tokens: bool | None = None,
    ) -> Subscriber:
        """Register and connect a subscriber.

        ``embedded_token_source=True`` enables the §8 future-work
        configuration: the ARA provisions PBE master material into the
        subscriber and tokens are minted locally, so the plaintext
        predicate never leaves the subscriber.

        ``delegate_tokens`` (default: the config's ``delegated_matching``)
        registers this subscriber's tokens with the DS for pre-filtered
        fan-out — see :mod:`repro.core.ds` for the privacy trade-off.
        """
        if delegate_tokens is None:
            delegate_tokens = self.config.delegated_matching
        credentials = self.ara.register_subscriber(name, attributes)
        connection = JmsConnection(
            self.network.add_host(name), list(self.ds_shards)
        )
        connection.start()
        token_source = None
        if embedded_token_source:
            from ..pbe.hve import HVE
            from .embedded_ts import EmbeddedTokenSource

            master_key, _ = self.ara.provision_pbe_ts()
            token_source = EmbeddedTokenSource(HVE(self.group), master_key, self.config.schema)
        subscriber = Subscriber(
            credentials,
            connection,
            self.group,
            self.config.timings,
            use_anonymizer=self.config.use_anonymizer,
            guid_bytes=self.config.guid_bytes,
            metadata_topic=self.config.metadata_topic,
            on_payload=on_payload,
            local_token_source=token_source,
            delegate_tokens=delegate_tokens,
        )
        self.subscribers[name] = subscriber
        return subscriber

    def subscribe(self, subscriber: Subscriber, interest: Interest):
        """Kick off the Fig. 3 token-request protocol for ``interest``."""
        return subscriber.subscribe(interest)

    # -- fault injection (repro.chaos) ------------------------------------------

    def set_fault_injector(self, injector) -> None:
        """Install a chaos fault injector on this deployment's network.

        ``injector`` follows the :meth:`repro.net.network.Network.set_fault_injector`
        contract — typically a :class:`repro.chaos.inject.SimFaultInjector`
        armed with a seeded :class:`repro.chaos.schedule.FaultSchedule`.
        Pass ``None`` to restore the lossless network.
        """
        self.network.set_fault_injector(injector)

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now

    def close(self) -> None:
        """Release every shard's pool workers and store handles."""
        if self.profiler is not None:
            self.profiler.stop()
        for ds in self.ds_shards.values():
            ds.close_match_pool()
            ds.store.close()
        for rs in self.rs_shards.values():
            rs.store.close()

    # -- experiment accessors ----------------------------------------------------------

    def cluster_status(self) -> dict:
        """JSON-friendly topology + membership report (`repro cluster status`)."""
        status: dict = {
            "sharded": self.cluster is not None,
            "ds_shards": list(self.ds_shards),
            "rs_shards": list(self.rs_shards),
            "membership": self.membership.snapshot(self.sim.now),
            "rs_items": {
                name: rs.store.item_count for name, rs in self.rs_shards.items()
            },
            "ds_publications": {
                name: sum(ds.publications_by_publisher.values())
                for name, ds in self.ds_shards.items()
            },
        }
        if self.cluster is not None:
            status["cluster"] = self.cluster.describe()
        return status

    def deliveries_for(self, record: PublicationRecord) -> list[Delivery]:
        """All deliveries of one publication, across every subscriber."""
        return [
            delivery
            for subscriber in self.subscribers.values()
            for delivery in subscriber.stats.deliveries
            if delivery.guid == record.guid
        ]

    def delivery_latencies(self, record: PublicationRecord) -> list[float]:
        """End-to-end latency (submit → application delivery) per receiver."""
        return [
            delivery.delivered_at - record.submitted_at
            for delivery in self.deliveries_for(record)
        ]
