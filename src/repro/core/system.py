"""Deployment orchestration: stand up a full P3S system in the simulator.

:class:`P3SSystem` builds the topology of Fig. 1 — DS, RS, PBE-TS,
anonymization service, any number of publishers and subscribers — wires
all keying material through the ARA, and exposes convenience accessors
for experiments (deliveries per publication, per-component observation
logs, the eavesdropper wire trace).

Typical use::

    system = P3SSystem()
    alice = system.add_subscriber("alice", attributes={"org:acme"})
    system.subscribe(alice, Interest({"topic": "m&a"}))
    bob = system.add_publisher("bob")
    record = bob.publish({"topic": "m&a", ...}, b"payload", policy="org:acme")
    system.run()
    deliveries = system.deliveries_for(record)
"""

from __future__ import annotations

import os

from ..crypto.group import PairingGroup
from ..mq.client import JmsConnection
from ..net.network import Network
from ..net.simulator import Simulator
from ..pbe.hve import HVE
from ..pbe.schema import Interest
from ..store import StorageEngine, open_engine
from .anonymizer import AnonymizationService
from .ara import RegistrationAuthority
from .config import P3SConfig
from .ds import DisseminationServer
from .pbe_ts import PBETokenServer
from .publisher import PublicationRecord, Publisher
from .rs import RepositoryServer
from .subscriber import Delivery, Subscriber

__all__ = ["P3SSystem"]


class P3SSystem:
    """One fully-wired P3S deployment inside a discrete-event simulation."""

    def __init__(self, config: P3SConfig | None = None):
        self.config = config or P3SConfig()
        self.sim = Simulator()
        self.obs = self.config.obs
        if self.obs is not None:
            # bind span timestamps to this simulator's clock and become
            # the process-wide sink for the instrumentation hooks
            self.obs.bind_clock(lambda: self.sim.now)
            self.obs.install()
        self.network = Network(
            self.sim,
            default_bandwidth_bps=self.config.bandwidth_bps,
            latency_s=self.config.latency_s,
        )
        self.group = PairingGroup(self.config.param_set)
        self.ara = RegistrationAuthority(self.group, self.config.schema)

        # --- third parties (Fig. 1) ---
        self.rs = RepositoryServer(
            self.network.add_host("rs"),
            self.group,
            self.config.timings,
            t_g=self.config.t_g,
            gc_interval_s=self.config.rs_gc_interval_s,
            engine=self._open_store("rs"),
        )
        ds_host = self.network.add_host("ds")
        ds_host.set_link_bandwidth("rs", self.config.lan_bandwidth_bps)
        self.ds = DisseminationServer(
            ds_host,
            "rs",
            self.config.metadata_topic,
            group=self.group,
            timings=self.config.timings,
            match_workers=self.config.match_workers,
            store=self._open_store("ds"),
        )
        hve = HVE(self.group)
        master_key, verify_key = self.ara.provision_pbe_ts()
        self.pbe_ts = PBETokenServer(
            self.network.add_host("pbe-ts"),
            hve,
            master_key,
            self.config.schema,
            verify_key,
            self.config.timings,
            subscription_policy=self.config.subscription_policy,
        )
        self.anonymizer = AnonymizationService(self.network.add_host("anon"))

        self.ara.install_service("ds", "ds")
        self.ara.install_service("rs", "rs", self.rs.pke.public)
        self.ara.install_service("pbe_ts", "pbe-ts", self.pbe_ts.pke.public)
        self.ara.install_service("anonymizer", "anon")

        self.rs.start()
        self.ds.start()
        self.pbe_ts.start()
        self.anonymizer.start()

        self.publishers: dict[str, Publisher] = {}
        self.subscribers: dict[str, Subscriber] = {}

    def _open_store(self, role: str) -> StorageEngine | None:
        """One storage engine per durable service, under ``data_dir/<role>``.

        With the default ``memory`` backend returns None so the service
        constructs its own MemoryEngine — exactly the historical
        behaviour.
        """
        backend = self.config.store_backend
        if backend == "memory":
            return None
        if self.config.data_dir is None:
            raise ValueError(f"store_backend={backend!r} requires data_dir")
        root = os.path.join(self.config.data_dir, role)
        path = os.path.join(root, "store.db") if backend == "sqlite" else root
        if backend == "sqlite":
            os.makedirs(root, exist_ok=True)
        return open_engine(
            backend,
            path,
            key=self.config.store_key,
            fsync=self.config.store_fsync,
            snapshot_every=self.config.store_snapshot_every,
            component=role,
        )

    # -- participants -----------------------------------------------------------

    def add_publisher(self, name: str) -> Publisher:
        credentials = self.ara.register_publisher(name)
        connection = JmsConnection(self.network.add_host(name), "ds")
        connection.start()
        publisher = Publisher(
            credentials,
            connection,
            self.group,
            self.config.timings,
            guid_bytes=self.config.guid_bytes,
        )
        self.publishers[name] = publisher
        return publisher

    def add_subscriber(
        self,
        name: str,
        attributes: set[str],
        on_payload=None,
        embedded_token_source: bool = False,
        delegate_tokens: bool | None = None,
    ) -> Subscriber:
        """Register and connect a subscriber.

        ``embedded_token_source=True`` enables the §8 future-work
        configuration: the ARA provisions PBE master material into the
        subscriber and tokens are minted locally, so the plaintext
        predicate never leaves the subscriber.

        ``delegate_tokens`` (default: the config's ``delegated_matching``)
        registers this subscriber's tokens with the DS for pre-filtered
        fan-out — see :mod:`repro.core.ds` for the privacy trade-off.
        """
        if delegate_tokens is None:
            delegate_tokens = self.config.delegated_matching
        credentials = self.ara.register_subscriber(name, attributes)
        connection = JmsConnection(self.network.add_host(name), "ds")
        connection.start()
        token_source = None
        if embedded_token_source:
            from ..pbe.hve import HVE
            from .embedded_ts import EmbeddedTokenSource

            master_key, _ = self.ara.provision_pbe_ts()
            token_source = EmbeddedTokenSource(HVE(self.group), master_key, self.config.schema)
        subscriber = Subscriber(
            credentials,
            connection,
            self.group,
            self.config.timings,
            use_anonymizer=self.config.use_anonymizer,
            guid_bytes=self.config.guid_bytes,
            metadata_topic=self.config.metadata_topic,
            on_payload=on_payload,
            local_token_source=token_source,
            delegate_tokens=delegate_tokens,
        )
        self.subscribers[name] = subscriber
        return subscriber

    def subscribe(self, subscriber: Subscriber, interest: Interest):
        """Kick off the Fig. 3 token-request protocol for ``interest``."""
        return subscriber.subscribe(interest)

    # -- fault injection (repro.chaos) ------------------------------------------

    def set_fault_injector(self, injector) -> None:
        """Install a chaos fault injector on this deployment's network.

        ``injector`` follows the :meth:`repro.net.network.Network.set_fault_injector`
        contract — typically a :class:`repro.chaos.inject.SimFaultInjector`
        armed with a seeded :class:`repro.chaos.schedule.FaultSchedule`.
        Pass ``None`` to restore the lossless network.
        """
        self.network.set_fault_injector(injector)

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now

    # -- experiment accessors ----------------------------------------------------------

    def deliveries_for(self, record: PublicationRecord) -> list[Delivery]:
        """All deliveries of one publication, across every subscriber."""
        return [
            delivery
            for subscriber in self.subscribers.values()
            for delivery in subscriber.stats.deliveries
            if delivery.guid == record.guid
        ]

    def delivery_latencies(self, record: PublicationRecord) -> list[float]:
        """End-to-end latency (submit → application delivery) per receiver."""
        return [
            delivery.delivered_at - record.submitted_at
            for delivery in self.deliveries_for(record)
        ]
