"""Experiment metrics: per-publication lifecycle and aggregate statistics.

:class:`MetricsCollector` turns a finished :class:`~repro.core.system.P3SSystem`
run into the quantities the evaluation reports: per-publication delivery
latencies (submit → application delivery, per matching subscriber),
distribution statistics (mean/median/p95/max), achieved throughput over a
window, and per-component byte counters.  ``to_csv`` exports the raw
timeline for offline analysis.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from .publisher import PublicationRecord
from .system import P3SSystem

__all__ = ["LatencyStats", "PublicationMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary over a set of latencies (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencyStats":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=percentile(0.5),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=ordered[-1],
        )


@dataclass(frozen=True)
class PublicationMetrics:
    """Everything measured about one publication."""

    publication_id: int
    publisher: str
    submitted_at: float
    metadata_bytes: int
    payload_bytes: int
    deliveries: int
    latencies: tuple[float, ...]

    @property
    def worst_latency(self) -> float:
        return max(self.latencies) if self.latencies else float("nan")


class MetricsCollector:
    """Aggregate view over a system's publications and deliveries."""

    def __init__(self, system: P3SSystem):
        self.system = system

    # -- per-publication --------------------------------------------------------

    def publication_metrics(self) -> list[PublicationMetrics]:
        result = []
        for publisher in self.system.publishers.values():
            for record in publisher.published:
                latencies = tuple(self.system.delivery_latencies(record))
                result.append(
                    PublicationMetrics(
                        publication_id=record.publication_id,
                        publisher=publisher.name,
                        submitted_at=record.submitted_at,
                        metadata_bytes=record.metadata_bytes,
                        payload_bytes=record.payload_bytes,
                        deliveries=len(latencies),
                        latencies=latencies,
                    )
                )
        return sorted(result, key=lambda m: m.publication_id)

    def _record_for(self, publication_id: int) -> PublicationRecord | None:
        for publisher in self.system.publishers.values():
            for record in publisher.published:
                if record.publication_id == publication_id:
                    return record
        return None

    # -- aggregates ---------------------------------------------------------------

    def latency_stats(self) -> LatencyStats:
        """Across all deliveries of all publications."""
        values = [
            latency for metrics in self.publication_metrics() for latency in metrics.latencies
        ]
        return LatencyStats.from_values(values)

    def worst_case_latency_stats(self) -> LatencyStats:
        """Across publications, using each one's slowest delivery
        (the quantity the paper's latency model bounds)."""
        values = [
            metrics.worst_latency
            for metrics in self.publication_metrics()
            if metrics.deliveries
        ]
        return LatencyStats.from_values(values)

    def achieved_throughput(self) -> float:
        """Publications fully delivered per simulated second."""
        metrics = [m for m in self.publication_metrics() if m.deliveries]
        if len(metrics) < 2:
            return 0.0
        first = min(m.submitted_at for m in metrics)
        last_delivery = max(m.submitted_at + m.worst_latency for m in metrics)
        if last_delivery <= first:
            return 0.0
        return len(metrics) / (last_delivery - first)

    def delivery_ratio(self) -> float:
        """Delivered / expected, where expected = matches across subscribers."""
        expected = sum(s.stats.matches for s in self.system.subscribers.values())
        delivered = sum(len(s.stats.deliveries) for s in self.system.subscribers.values())
        return 1.0 if expected == 0 else delivered / expected

    def component_bytes(self) -> dict[str, tuple[int, int]]:
        """Per-host (sent, received) byte counters — the bandwidth story.

        When the system runs with an :class:`repro.obs.Observability`
        instance installed, the counters come from the ``net.bytes``
        metric registry (one source of truth for the wire accounting);
        otherwise they fall back to the per-host counters.
        """
        if self.system.obs is not None and not self.system.obs.metrics.empty:
            registry = self.system.obs.metrics
            sent = registry.counters_by_label("net.bytes", "src")
            received = registry.counters_by_label("net.bytes", "dst")
            return {
                name: (int(sent.get(name, 0)), int(received.get(name, 0)))
                for name in self.system.network.hosts
            }
        return {
            name: (host.bytes_sent, host.bytes_received)
            for name, host in self.system.network.hosts.items()
        }

    def crypto_op_counts(self) -> dict[str, int]:
        """Total crypto-operation counters (``op.*``) from the registry.

        Empty when the system runs without observability installed.
        """
        if self.system.obs is None:
            return {}
        return {
            name: self.system.obs.metrics.counter_total(name)
            for name in self.system.obs.metrics.counter_names()
            if name.startswith("op.")
        }

    # -- export --------------------------------------------------------------------

    def to_csv(self) -> str:
        """Raw per-delivery rows: publication, subscriber, latency, sizes."""
        buffer = io.StringIO()
        buffer.write("publication_id,publisher,subscriber,latency_s,metadata_bytes,payload_bytes\n")
        for metrics in self.publication_metrics():
            record = self._record_for(metrics.publication_id)
            for subscriber in self.system.subscribers.values():
                for delivery in subscriber.stats.deliveries:
                    if record is not None and delivery.guid == record.guid:
                        latency = delivery.delivered_at - record.submitted_at
                        buffer.write(
                            f"{metrics.publication_id},{metrics.publisher},"
                            f"{subscriber.name},{latency:.6f},"
                            f"{metrics.metadata_bytes},{metrics.payload_bytes}\n"
                        )
        return buffer.getvalue()
