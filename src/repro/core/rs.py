"""Repository Server (RS): encrypted payload store with TTL garbage collection.

Paper §4.1/§4.3: the RS "stores CP-ABE encrypted payloads along with
their associated GUIDs, and sends the encrypted payload associated with a
GUID to a subscriber upon request".  Retrieval requests arrive (via the
anonymizer) PKE-encrypted under the RS public key as ``(K_s, GUID)``; the
stored ciphertext is returned super-encrypted under ``K_s`` "to prevent
eavesdroppers from learning if more than one subscriber has received the
same payload" (§6.1).

Deletion (§4.3): each item carries TTL_item; the RS deletes it at
``arrival + TTL_item + T_G`` where the grace period ``T_G`` accommodates
slow consumers.  ``T_G = 0`` gives the strict interpretation, at the cost
of more failed fetches.

The storage/TTL/crypto logic lives in the substrate-free
:class:`RepositoryStore` engine, shared verbatim by this simulator
service and the asyncio TCP service in :mod:`repro.live.services` — both
substrates serve byte-identical replies because they run the same engine.

Like the PBE-TS, the RS records what an honest-but-curious operator would
inevitably learn (request counts per stored item, item sizes, whether an
item was ever matched) — the privacy analysis asserts over these logs.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass
from typing import Callable

from ..crypto.pke import PKEKeyPair
from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError, RetrievalError
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..obs import profile as obs
from ..store import MemoryEngine, StorageEngine
from ..store.codec import NS_ITEMS, decode_item, encode_item
from .config import ComputeTimings
from .messages import RPC_RETRIEVE, RPC_STORE, PayloadSubmission

__all__ = [
    "RepositoryServer",
    "RepositoryStore",
    "encode_retrieval_request",
    "decode_retrieval_request",
    "decode_retrieval_response",
]

_OK = b"\x01"
_ERR = b"\x00"


def encode_retrieval_request(session_key: bytes, guid: bytes) -> bytes:
    """Plaintext body of the 2-tuple (K_s, GUID)."""
    return json.dumps({"ks": session_key.hex(), "guid": guid.hex()}).encode("utf-8")


def decode_retrieval_request(pke: PKEKeyPair, payload: bytes) -> tuple[bytes, bytes]:
    """PKE-decrypt and parse one retrieval request; returns ``(K_s, GUID)``.

    Raises :class:`RetrievalError` when the request is malformed or not
    addressed to this server's key.
    """
    try:
        body = json.loads(pke.decrypt(payload).decode("utf-8"))
        return bytes.fromhex(body["ks"]), bytes.fromhex(body["guid"])
    except (DecryptionError, ValueError, KeyError) as exc:
        raise RetrievalError(f"malformed retrieval request: {exc}") from exc


def decode_retrieval_response(session_key: bytes, sealed: bytes) -> bytes:
    """Unseal the RS reply; returns the CP-ABE ciphertext bytes.

    Raises :class:`RetrievalError` if the item was missing or expired.
    """
    plaintext = SecretBox(session_key).open(sealed)
    if not plaintext or plaintext[:1] != _OK:
        raise RetrievalError(
            plaintext[1:].decode("utf-8", "replace") or "unknown retrieval failure"
        )
    return plaintext[1:]


@dataclass
class _StoredItem:
    ciphertext: bytes
    stored_at: float
    expires_at: float
    request_count: int = 0


class RepositoryStore:
    """The RS's substrate-free storage engine (the "disk").

    Every method takes ``now`` explicitly — the simulator passes
    ``sim.now``, the live service passes its wall clock — so TTL
    semantics are identical on both substrates.

    Durability is delegated to a pluggable
    :class:`~repro.store.StorageEngine`: every store writes through to
    the engine's ``items`` namespace and every GC deletion tombstones
    it, so with a durable backend (``wal``/``sqlite``) the committed
    item set survives ``kill -9`` and is recovered at construction.
    The default :class:`~repro.store.MemoryEngine` reproduces the old
    purely-in-memory behaviour bit for bit.

    GC cost: expiry times ride a min-heap, so one sweep is
    O(expired · log n) instead of a full scan of every live item
    (``last_gc_examined`` counts heap pops for the regression test).
    Entries whose item was overwritten with a different expiry are
    dropped lazily when popped.

    Clock epochs: persisted ``stored_at``/``expires_at`` are readings of
    the *storing* process's service clock, and that epoch dies with a
    reboot (``time.monotonic`` restarts at boot) or a new simulator run.
    Pass ``now`` — the recovering service's current clock reading — to
    rebase every recovered expiry onto the live epoch using the
    wall-clock timestamp persisted alongside each item; the live RS
    always does.  ``now=None`` trusts the persisted epoch verbatim,
    which is only correct when the clock never reset across the
    restart (the simulator's virtual clock within one run, or tests
    that drive ``now`` explicitly).
    """

    def __init__(
        self,
        t_g: float = 60.0,
        engine: StorageEngine | None = None,
        now: float | None = None,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.t_g = t_g
        self.engine = engine if engine is not None else MemoryEngine()
        self._wall_clock = wall_clock
        self._items: dict[bytes, _StoredItem] = {}
        self._expiry_heap: list[tuple[float, bytes]] = []
        self.stored_count = 0
        self.expired_count = 0
        self.failed_retrievals = 0
        self.last_gc_examined = 0
        self.recovered_count = self._recover(now)

    def _recover(self, now: float | None) -> int:
        """Rebuild the in-memory index from whatever the engine holds.

        With ``now`` given, each item's clocks are rebased: real time
        elapsed since the item was stored is measured on the wall clock
        (whose epoch survives reboots), and the expiry becomes
        ``now + (ttl_total - elapsed)`` — already in the past when the
        item outlived its TTL while the service was down, so the first
        GC sweep deletes it.  Without rebasing, a dead persisted epoch
        (e.g. pre-reboot ``time.monotonic`` readings) could compare
        above the new clock indefinitely and GC would never fire.

        Request counts start at zero: they are operator observability,
        not committed protocol state (see :mod:`repro.store.codec`).
        """
        wall_now = self._wall_clock()
        for guid, value in self.engine.items(NS_ITEMS):
            stored_at, expires_at, wall_stored_at, ciphertext = decode_item(value)
            if now is not None:
                elapsed = max(0.0, wall_now - wall_stored_at)
                ttl_total = expires_at - stored_at
                stored_at = now - elapsed
                expires_at = stored_at + ttl_total
            self._items[guid] = _StoredItem(
                ciphertext=ciphertext, stored_at=stored_at, expires_at=expires_at
            )
            heapq.heappush(self._expiry_heap, (expires_at, guid))
        return len(self._items)

    def store(self, submission: PayloadSubmission, now: float) -> None:
        expires_at = now + submission.ttl_s + self.t_g
        self._items[submission.guid] = _StoredItem(
            ciphertext=submission.ciphertext,
            stored_at=now,
            expires_at=expires_at,
        )
        heapq.heappush(self._expiry_heap, (expires_at, submission.guid))
        self.engine.put(
            NS_ITEMS,
            submission.guid,
            encode_item(now, expires_at, self._wall_clock(), submission.ciphertext),
        )
        self.stored_count += 1

    def lookup(self, guid: bytes, now: float) -> tuple[bytes, str]:
        """Reply plaintext for one GUID: ``(status_byte + body, status)``."""
        item = self._items.get(guid)
        if item is None or now >= item.expires_at:
            self.failed_retrievals += 1
            return _ERR + b"no such item (unknown GUID or expired)", "miss"
        item.request_count += 1
        return _OK + item.ciphertext, "hit"

    def collect_garbage(self, now: float, compact: bool = False) -> int:
        """Drop every item past ``TTL_item + T_G``; returns how many.

        Each deletion tombstones the engine; ``compact=True``
        additionally rewrites the backend afterwards so the expired
        ciphertext bytes are physically unrecoverable from any store
        file (§4.3's deletion made verifiable).
        """
        removed = 0
        self.last_gc_examined = 0
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            expires_at, guid = heapq.heappop(self._expiry_heap)
            self.last_gc_examined += 1
            item = self._items.get(guid)
            if item is None or item.expires_at != expires_at:
                continue  # stale entry: the item was overwritten or already gone
            del self._items[guid]
            self.engine.delete(NS_ITEMS, guid)
            removed += 1
        self.expired_count += removed
        if removed:
            obs.record_op("rs.gc_expired", removed)
            if compact:
                self.engine.compact()
        return removed

    def compact(self) -> dict:
        return self.engine.compact()

    def holds(self, guid: bytes, now: float) -> bool:
        item = self._items.get(guid)
        return item is not None and now < item.expires_at

    # -- rebalance handoff (repro.cluster.rebalance) ---------------------------
    #
    # The transfer record is the engine's own encoded item (clocks +
    # ciphertext, see repro.store.codec), so a migrated item keeps its
    # exact stored_at/expires_at/wall timestamps on the receiving shard
    # and both sides' in-memory index and durable engine stay in step.

    def guids(self) -> list[bytes]:
        return list(self._items)

    def contains(self, guid: bytes) -> bool:
        return guid in self._items

    def export_item(self, guid: bytes) -> tuple[bytes]:
        value = self.engine.get(NS_ITEMS, guid)
        if value is None:
            raise KeyError(f"export of unknown item {guid.hex()}")
        return (value,)

    def import_item(self, guid: bytes, value: bytes) -> None:
        stored_at, expires_at, _wall_stored_at, ciphertext = decode_item(value)
        self._items[guid] = _StoredItem(
            ciphertext=ciphertext, stored_at=stored_at, expires_at=expires_at
        )
        heapq.heappush(self._expiry_heap, (expires_at, guid))
        self.engine.put(NS_ITEMS, guid, value)

    def evict(self, guid: bytes) -> None:
        """Drop an item this shard no longer owns (not an expiry: the
        counters stay untouched; the stale heap entry is lazily skipped)."""
        if self._items.pop(guid, None) is not None:
            self.engine.delete(NS_ITEMS, guid)

    def request_count(self, guid: bytes) -> int:
        item = self._items.get(guid)
        return 0 if item is None else item.request_count

    @property
    def item_count(self) -> int:
        return len(self._items)

    def close(self) -> None:
        self.engine.close()


class RepositoryServer:
    """The RS service process on the simulator substrate."""

    def __init__(
        self,
        host: Host,
        group: PairingGroup,
        timings: ComputeTimings,
        t_g: float = 60.0,
        gc_interval_s: float = 10.0,
        engine: StorageEngine | None = None,
    ):
        self.host = host
        self.timings = timings
        self.t_g = t_g
        self.gc_interval_s = gc_interval_s
        self.pke = PKEKeyPair(group)
        self.rpc = RpcEndpoint(SecureChannelLayer(host))
        self.rpc.serve(RPC_STORE, self._handle_store)
        self.rpc.serve(RPC_RETRIEVE, self._handle_retrieve)
        # the engine models the on-disk store: "The RS stores encrypted
        # content on disk" (§6.1) — it survives crash()/restart().  With
        # a durable repro.store backend it survives process death too.
        self.store = RepositoryStore(t_g=t_g, engine=engine)
        self.crashed = False
        # HBC-observable state (consumed by the privacy analysis):
        self.observed_sources: list[str] = []

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.host.network.sim

    # engine counters, surfaced under their historical names
    @property
    def stored_count(self) -> int:
        return self.store.stored_count

    @property
    def expired_count(self) -> int:
        return self.store.expired_count

    @property
    def failed_retrievals(self) -> int:
        return self.store.failed_retrievals

    def start(self) -> None:
        self.rpc.start()
        self.sim.process(self._gc_loop())

    # -- store (one-way, forwarded by the DS) ----------------------------------

    def _handle_store(self, src: str, message) -> None:
        if self.crashed:
            return  # frames to a crashed RS are lost
        submission: PayloadSubmission = message.payload
        with obs.span(
            "rs.store",
            component=self.name,
            parent=obs.extract(message.headers),
            bytes=len(submission.ciphertext),
        ):
            self.store.store(submission, now=self.sim.now)

    # -- retrieve (request-response via anonymizer) ---------------------------------

    def _handle_retrieve(self, src: str, message):
        if self.crashed:
            return (b"", 1)  # degenerate reply; requester's unseal fails
        self.observed_sources.append(src)
        span = obs.start_span(
            "rs.retrieve", component=self.name, parent=obs.extract(message.headers)
        )
        yield self.sim.timeout(self.timings.pke_op)
        try:
            with obs.attach(span):
                session_key, guid = decode_retrieval_request(self.pke, message.payload)
        except RetrievalError:
            obs.end_span(span, status="malformed")
            return (_ERR, 1)
        reply, status = self.store.lookup(guid, now=self.sim.now)
        yield self.sim.timeout(self.timings.symmetric(len(reply)))
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status, bytes=len(sealed))
        return (sealed, len(sealed))

    # -- garbage collection (§4.3 Deletion) --------------------------------------------

    def _gc_loop(self):
        while True:
            # daemon: the periodic sweep must not keep the simulation alive
            yield self.sim.timeout(self.gc_interval_s, daemon=True)
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Drop every item past ``TTL_item + T_G``; returns how many.

        On a durable engine the sweep also compacts, so expired
        ciphertext is gone from the store files, not merely tombstoned.
        """
        return self.store.collect_garbage(
            now=self.sim.now, compact=self.store.engine.durable
        )

    # -- crash / restart (§6.1) --------------------------------------------------------

    def crash(self) -> None:
        """Crash: volatile state is lost, the disk store is not."""
        self.crashed = True

    def restart(self) -> None:
        """"A crashed component can resume publish-subscribe activities
        after restart without requiring re-encryption of any published
        content" (§6.1): the encrypted items survived on disk."""
        self.crashed = False

    # -- introspection ---------------------------------------------------------------------

    def holds(self, guid: bytes) -> bool:
        return self.store.holds(guid, now=self.sim.now)

    def request_count(self, guid: bytes) -> int:
        return self.store.request_count(guid)

    @property
    def item_count(self) -> int:
        return self.store.item_count
