"""Repository Server (RS): encrypted payload store with TTL garbage collection.

Paper §4.1/§4.3: the RS "stores CP-ABE encrypted payloads along with
their associated GUIDs, and sends the encrypted payload associated with a
GUID to a subscriber upon request".  Retrieval requests arrive (via the
anonymizer) PKE-encrypted under the RS public key as ``(K_s, GUID)``; the
stored ciphertext is returned super-encrypted under ``K_s`` "to prevent
eavesdroppers from learning if more than one subscriber has received the
same payload" (§6.1).

Deletion (§4.3): each item carries TTL_item; the RS deletes it at
``arrival + TTL_item + T_G`` where the grace period ``T_G`` accommodates
slow consumers.  ``T_G = 0`` gives the strict interpretation, at the cost
of more failed fetches.

Like the PBE-TS, the RS records what an honest-but-curious operator would
inevitably learn (request counts per stored item, item sizes, whether an
item was ever matched) — the privacy analysis asserts over these logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..crypto.pke import PKEKeyPair
from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError, RetrievalError
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..obs import profile as obs
from .config import ComputeTimings
from .messages import RPC_RETRIEVE, RPC_STORE, PayloadSubmission

__all__ = ["RepositoryServer", "encode_retrieval_request", "decode_retrieval_response"]

_OK = b"\x01"
_ERR = b"\x00"


def encode_retrieval_request(session_key: bytes, guid: bytes) -> bytes:
    """Plaintext body of the 2-tuple (K_s, GUID)."""
    return json.dumps({"ks": session_key.hex(), "guid": guid.hex()}).encode("utf-8")


def decode_retrieval_response(session_key: bytes, sealed: bytes) -> bytes:
    """Unseal the RS reply; returns the CP-ABE ciphertext bytes.

    Raises :class:`RetrievalError` if the item was missing or expired.
    """
    plaintext = SecretBox(session_key).open(sealed)
    if not plaintext or plaintext[:1] != _OK:
        raise RetrievalError(
            plaintext[1:].decode("utf-8", "replace") or "unknown retrieval failure"
        )
    return plaintext[1:]


@dataclass
class _StoredItem:
    ciphertext: bytes
    stored_at: float
    expires_at: float
    request_count: int = 0


class RepositoryServer:
    """The RS service process."""

    def __init__(
        self,
        host: Host,
        group: PairingGroup,
        timings: ComputeTimings,
        t_g: float = 60.0,
        gc_interval_s: float = 10.0,
    ):
        self.host = host
        self.timings = timings
        self.t_g = t_g
        self.gc_interval_s = gc_interval_s
        self.pke = PKEKeyPair(group)
        self.rpc = RpcEndpoint(SecureChannelLayer(host))
        self.rpc.serve(RPC_STORE, self._handle_store)
        self.rpc.serve(RPC_RETRIEVE, self._handle_retrieve)
        # _items models the on-disk store: "The RS stores encrypted content
        # on disk" (§6.1) — it survives crash()/restart().
        self._items: dict[bytes, _StoredItem] = {}
        self.crashed = False
        # HBC-observable state (consumed by the privacy analysis):
        self.stored_count = 0
        self.expired_count = 0
        self.failed_retrievals = 0
        self.observed_sources: list[str] = []

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.host.network.sim

    def start(self) -> None:
        self.rpc.start()
        self.sim.process(self._gc_loop())

    # -- store (one-way, forwarded by the DS) ----------------------------------

    def _handle_store(self, src: str, message) -> None:
        if self.crashed:
            return  # frames to a crashed RS are lost
        submission: PayloadSubmission = message.payload
        with obs.span(
            "rs.store",
            component=self.name,
            parent=obs.extract(message.headers),
            bytes=len(submission.ciphertext),
        ):
            self._items[submission.guid] = _StoredItem(
                ciphertext=submission.ciphertext,
                stored_at=self.sim.now,
                expires_at=self.sim.now + submission.ttl_s + self.t_g,
            )
            self.stored_count += 1

    # -- retrieve (request-response via anonymizer) ---------------------------------

    def _handle_retrieve(self, src: str, message):
        if self.crashed:
            return (b"", 1)  # degenerate reply; requester's unseal fails
        self.observed_sources.append(src)
        span = obs.start_span(
            "rs.retrieve", component=self.name, parent=obs.extract(message.headers)
        )
        yield self.sim.timeout(self.timings.pke_op)
        try:
            with obs.attach(span):
                body = json.loads(self.pke.decrypt(message.payload).decode("utf-8"))
            session_key = bytes.fromhex(body["ks"])
            guid = bytes.fromhex(body["guid"])
        except (DecryptionError, ValueError, KeyError):
            obs.end_span(span, status="malformed")
            return (_ERR, 1)
        item = self._items.get(guid)
        if item is None or self.sim.now >= item.expires_at:
            self.failed_retrievals += 1
            reply = _ERR + b"no such item (unknown GUID or expired)"
            status = "miss"
        else:
            item.request_count += 1
            reply = _OK + item.ciphertext
            status = "hit"
        yield self.sim.timeout(self.timings.symmetric(len(reply)))
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status, bytes=len(sealed))
        return (sealed, len(sealed))

    # -- garbage collection (§4.3 Deletion) --------------------------------------------

    def _gc_loop(self):
        while True:
            # daemon: the periodic sweep must not keep the simulation alive
            yield self.sim.timeout(self.gc_interval_s, daemon=True)
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Drop every item past ``TTL_item + T_G``; returns how many."""
        now = self.sim.now
        expired = [guid for guid, item in self._items.items() if now >= item.expires_at]
        for guid in expired:
            del self._items[guid]
        self.expired_count += len(expired)
        return len(expired)

    # -- crash / restart (§6.1) --------------------------------------------------------

    def crash(self) -> None:
        """Crash: volatile state is lost, the disk store is not."""
        self.crashed = True

    def restart(self) -> None:
        """"A crashed component can resume publish-subscribe activities
        after restart without requiring re-encryption of any published
        content" (§6.1): the encrypted items survived on disk."""
        self.crashed = False

    # -- introspection ---------------------------------------------------------------------

    def holds(self, guid: bytes) -> bool:
        item = self._items.get(guid)
        return item is not None and self.sim.now < item.expires_at

    def request_count(self, guid: bytes) -> int:
        item = self._items.get(guid)
        return 0 if item is None else item.request_count

    @property
    def item_count(self) -> int:
        return len(self._items)
