"""Repository Server (RS): encrypted payload store with TTL garbage collection.

Paper §4.1/§4.3: the RS "stores CP-ABE encrypted payloads along with
their associated GUIDs, and sends the encrypted payload associated with a
GUID to a subscriber upon request".  Retrieval requests arrive (via the
anonymizer) PKE-encrypted under the RS public key as ``(K_s, GUID)``; the
stored ciphertext is returned super-encrypted under ``K_s`` "to prevent
eavesdroppers from learning if more than one subscriber has received the
same payload" (§6.1).

Deletion (§4.3): each item carries TTL_item; the RS deletes it at
``arrival + TTL_item + T_G`` where the grace period ``T_G`` accommodates
slow consumers.  ``T_G = 0`` gives the strict interpretation, at the cost
of more failed fetches.

The storage/TTL/crypto logic lives in the substrate-free
:class:`RepositoryStore` engine, shared verbatim by this simulator
service and the asyncio TCP service in :mod:`repro.live.services` — both
substrates serve byte-identical replies because they run the same engine.

Like the PBE-TS, the RS records what an honest-but-curious operator would
inevitably learn (request counts per stored item, item sizes, whether an
item was ever matched) — the privacy analysis asserts over these logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..crypto.pke import PKEKeyPair
from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError, RetrievalError
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..obs import profile as obs
from .config import ComputeTimings
from .messages import RPC_RETRIEVE, RPC_STORE, PayloadSubmission

__all__ = [
    "RepositoryServer",
    "RepositoryStore",
    "encode_retrieval_request",
    "decode_retrieval_request",
    "decode_retrieval_response",
]

_OK = b"\x01"
_ERR = b"\x00"


def encode_retrieval_request(session_key: bytes, guid: bytes) -> bytes:
    """Plaintext body of the 2-tuple (K_s, GUID)."""
    return json.dumps({"ks": session_key.hex(), "guid": guid.hex()}).encode("utf-8")


def decode_retrieval_request(pke: PKEKeyPair, payload: bytes) -> tuple[bytes, bytes]:
    """PKE-decrypt and parse one retrieval request; returns ``(K_s, GUID)``.

    Raises :class:`RetrievalError` when the request is malformed or not
    addressed to this server's key.
    """
    try:
        body = json.loads(pke.decrypt(payload).decode("utf-8"))
        return bytes.fromhex(body["ks"]), bytes.fromhex(body["guid"])
    except (DecryptionError, ValueError, KeyError) as exc:
        raise RetrievalError(f"malformed retrieval request: {exc}") from exc


def decode_retrieval_response(session_key: bytes, sealed: bytes) -> bytes:
    """Unseal the RS reply; returns the CP-ABE ciphertext bytes.

    Raises :class:`RetrievalError` if the item was missing or expired.
    """
    plaintext = SecretBox(session_key).open(sealed)
    if not plaintext or plaintext[:1] != _OK:
        raise RetrievalError(
            plaintext[1:].decode("utf-8", "replace") or "unknown retrieval failure"
        )
    return plaintext[1:]


@dataclass
class _StoredItem:
    ciphertext: bytes
    stored_at: float
    expires_at: float
    request_count: int = 0


class RepositoryStore:
    """The RS's substrate-free storage engine (the "disk").

    Every method takes ``now`` explicitly — the simulator passes
    ``sim.now``, the live service passes its wall clock — so TTL
    semantics are identical on both substrates.
    """

    def __init__(self, t_g: float = 60.0):
        self.t_g = t_g
        self._items: dict[bytes, _StoredItem] = {}
        self.stored_count = 0
        self.expired_count = 0
        self.failed_retrievals = 0

    def store(self, submission: PayloadSubmission, now: float) -> None:
        self._items[submission.guid] = _StoredItem(
            ciphertext=submission.ciphertext,
            stored_at=now,
            expires_at=now + submission.ttl_s + self.t_g,
        )
        self.stored_count += 1

    def lookup(self, guid: bytes, now: float) -> tuple[bytes, str]:
        """Reply plaintext for one GUID: ``(status_byte + body, status)``."""
        item = self._items.get(guid)
        if item is None or now >= item.expires_at:
            self.failed_retrievals += 1
            return _ERR + b"no such item (unknown GUID or expired)", "miss"
        item.request_count += 1
        return _OK + item.ciphertext, "hit"

    def collect_garbage(self, now: float) -> int:
        """Drop every item past ``TTL_item + T_G``; returns how many."""
        expired = [guid for guid, item in self._items.items() if now >= item.expires_at]
        for guid in expired:
            del self._items[guid]
        self.expired_count += len(expired)
        return len(expired)

    def holds(self, guid: bytes, now: float) -> bool:
        item = self._items.get(guid)
        return item is not None and now < item.expires_at

    def request_count(self, guid: bytes) -> int:
        item = self._items.get(guid)
        return 0 if item is None else item.request_count

    @property
    def item_count(self) -> int:
        return len(self._items)


class RepositoryServer:
    """The RS service process on the simulator substrate."""

    def __init__(
        self,
        host: Host,
        group: PairingGroup,
        timings: ComputeTimings,
        t_g: float = 60.0,
        gc_interval_s: float = 10.0,
    ):
        self.host = host
        self.timings = timings
        self.t_g = t_g
        self.gc_interval_s = gc_interval_s
        self.pke = PKEKeyPair(group)
        self.rpc = RpcEndpoint(SecureChannelLayer(host))
        self.rpc.serve(RPC_STORE, self._handle_store)
        self.rpc.serve(RPC_RETRIEVE, self._handle_retrieve)
        # the engine models the on-disk store: "The RS stores encrypted
        # content on disk" (§6.1) — it survives crash()/restart().
        self.store = RepositoryStore(t_g=t_g)
        self.crashed = False
        # HBC-observable state (consumed by the privacy analysis):
        self.observed_sources: list[str] = []

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.host.network.sim

    # engine counters, surfaced under their historical names
    @property
    def stored_count(self) -> int:
        return self.store.stored_count

    @property
    def expired_count(self) -> int:
        return self.store.expired_count

    @property
    def failed_retrievals(self) -> int:
        return self.store.failed_retrievals

    def start(self) -> None:
        self.rpc.start()
        self.sim.process(self._gc_loop())

    # -- store (one-way, forwarded by the DS) ----------------------------------

    def _handle_store(self, src: str, message) -> None:
        if self.crashed:
            return  # frames to a crashed RS are lost
        submission: PayloadSubmission = message.payload
        with obs.span(
            "rs.store",
            component=self.name,
            parent=obs.extract(message.headers),
            bytes=len(submission.ciphertext),
        ):
            self.store.store(submission, now=self.sim.now)

    # -- retrieve (request-response via anonymizer) ---------------------------------

    def _handle_retrieve(self, src: str, message):
        if self.crashed:
            return (b"", 1)  # degenerate reply; requester's unseal fails
        self.observed_sources.append(src)
        span = obs.start_span(
            "rs.retrieve", component=self.name, parent=obs.extract(message.headers)
        )
        yield self.sim.timeout(self.timings.pke_op)
        try:
            with obs.attach(span):
                session_key, guid = decode_retrieval_request(self.pke, message.payload)
        except RetrievalError:
            obs.end_span(span, status="malformed")
            return (_ERR, 1)
        reply, status = self.store.lookup(guid, now=self.sim.now)
        yield self.sim.timeout(self.timings.symmetric(len(reply)))
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status, bytes=len(sealed))
        return (sealed, len(sealed))

    # -- garbage collection (§4.3 Deletion) --------------------------------------------

    def _gc_loop(self):
        while True:
            # daemon: the periodic sweep must not keep the simulation alive
            yield self.sim.timeout(self.gc_interval_s, daemon=True)
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Drop every item past ``TTL_item + T_G``; returns how many."""
        return self.store.collect_garbage(now=self.sim.now)

    # -- crash / restart (§6.1) --------------------------------------------------------

    def crash(self) -> None:
        """Crash: volatile state is lost, the disk store is not."""
        self.crashed = True

    def restart(self) -> None:
        """"A crashed component can resume publish-subscribe activities
        after restart without requiring re-encryption of any published
        content" (§6.1): the encrypted items survived on disk."""
        self.crashed = False

    # -- introspection ---------------------------------------------------------------------

    def holds(self, guid: bytes) -> bool:
        return self.store.holds(guid, now=self.sim.now)

    def request_count(self, guid: bytes) -> int:
        return self.store.request_count(guid)

    @property
    def item_count(self) -> int:
        return self.store.item_count
