"""Knowledge closure over gadgets.

"Analysis using the PBE gadget ... involves tracing the execution steps of
the P3S system over time focusing on the behavior of individual
participants and information they become privy to during execution.  We
then test whether private information ... becomes visible to undesired
participants" (§6.1).

:func:`closure` does the mechanical half: given what a participant starts
out knowing, saturate over the gadget's AND gates (an output becomes known
once *all* of a gate's inputs are known).  :func:`derivation` reconstructs
*how* something became known — the evidence the analysis reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gadget import Gadget

__all__ = ["closure", "derivation", "Derivation"]


@dataclass(frozen=True)
class Derivation:
    """One derivation step: ``output`` obtained via ``gate_label`` from ``inputs``."""

    output: str
    gate_label: str
    inputs: tuple[str, ...]
    attack: bool


def closure(
    gadget: Gadget, known: set[str], include_attacks: bool = True
) -> tuple[set[str], list[Derivation]]:
    """Saturate ``known`` over the gadget's gates.

    Returns the closed knowledge set and the ordered derivation log.
    With ``include_attacks=False`` only intended-protocol gates fire
    (the HBC view); with ``True`` the orange attack edges fire too
    (what a participant *could* compute).
    """
    known = set(known)
    log: list[Derivation] = []
    gates = gadget.gates(include_attacks=include_attacks)
    changed = True
    while changed:
        changed = False
        for gate in gates:
            if gate.output in known:
                continue
            if all(node in known for node in gate.inputs):
                known.add(gate.output)
                log.append(Derivation(gate.output, gate.label, gate.inputs, gate.attack))
                changed = True
    return known, log


def derivation(
    gadget: Gadget, known: set[str], target: str, include_attacks: bool = True
) -> list[Derivation] | None:
    """The minimal suffix of the derivation log that produces ``target``.

    Returns ``None`` when ``target`` is not derivable.  If ``target`` was
    known initially, returns the empty list.
    """
    if target in known:
        return []
    closed, log = closure(gadget, known, include_attacks=include_attacks)
    if target not in closed:
        return None
    # Walk backwards keeping only steps that feed the target.
    needed = {target}
    kept: list[Derivation] = []
    for step in reversed(log):
        if step.output in needed:
            kept.append(step)
            needed.update(step.inputs)
    kept.reverse()
    return kept
