"""Trace-based visibility reports from *running* P3S deployments.

The structural analysis (:mod:`repro.privacy.analysis`) reasons over the
gadget graph; this module does the complementary empirical check: given a
finished :class:`~repro.core.system.P3SSystem` run, collect what each
component actually observed and evaluate the §6.1 "Summary of ...
visibility" claims against it.

Each claim is a :class:`VisibilityClaim` with the paper's wording, the
component it concerns, and a boolean verdict computed from the run's
observation logs and the eavesdropper wire trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.system import P3SSystem

__all__ = ["VisibilityClaim", "VisibilityReport", "trace_visibility"]


@dataclass(frozen=True)
class VisibilityClaim:
    """One §6.1 claim, checked against a concrete run."""

    component: str
    claim: str
    holds: bool
    evidence: str


@dataclass
class VisibilityReport:
    claims: list[VisibilityClaim]

    def all_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def failures(self) -> list[VisibilityClaim]:
        return [claim for claim in self.claims if not claim.holds]

    def for_component(self, component: str) -> list[VisibilityClaim]:
        return [claim for claim in self.claims if claim.component == component]


def trace_visibility(system: P3SSystem) -> VisibilityReport:
    """Evaluate the §6.1 visibility claims against a finished run.

    Call after ``system.run()`` with at least one subscription and one
    publication, so the observation logs are populated.
    """
    claims: list[VisibilityClaim] = []
    # aggregate over shards (a sharded deployment must uphold the same
    # claims at every shard); single-node systems have one of each
    ds_shards = list(getattr(system, "ds_shards", {"ds": system.ds}).values())
    rs_shards = list(getattr(system, "rs_shards", {"rs": system.rs}).values())
    ds_observed_sizes = [obs for ds in ds_shards for obs in ds.observed_sizes]
    ds_publications_by_publisher: dict[str, int] = {}
    for ds in ds_shards:
        for name, count in ds.publications_by_publisher.items():
            ds_publications_by_publisher[name] = (
                ds_publications_by_publisher.get(name, 0) + count
            )
    rs_observed_sources = [src for rs in rs_shards for src in rs.observed_sources]
    rs_stored_total = sum(rs.stored_count for rs in rs_shards)
    subscriber_names = set(system.subscribers)
    interests_plain = {
        interest.to_json()
        for subscriber in system.subscribers.values()
        for interest, _ in subscriber.tokens
    }
    all_metadata = [
        record.metadata
        for publisher in system.publishers.values()
        for record in publisher.published
    ]

    # --- DS ---------------------------------------------------------------
    ds_sees_only_sizes = all(
        isinstance(size, int) for _, size in ds_observed_sizes
    )
    claims.append(
        VisibilityClaim(
            "ds",
            "The DS does know the size of payloads and the size of "
            "encrypted PBE metadata (and nothing content-bearing)",
            ds_sees_only_sizes and len(ds_observed_sizes) > 0,
            f"{len(ds_observed_sizes)} size observations recorded",
        )
    )
    claims.append(
        VisibilityClaim(
            "ds",
            "The DS knows the per-publisher publication rate",
            all(name in system.publishers for name in ds_publications_by_publisher),
            f"counters: {dict(ds_publications_by_publisher)}",
        )
    )
    claims.append(
        VisibilityClaim(
            "ds",
            "The DS knows nothing about the subscriber interests",
            True,  # interests only ever travel PKE-encrypted to the PBE-TS
            "interest material never addressed to the DS by construction; "
            "tokens live only at subscribers",
        )
    )

    # --- RS ---------------------------------------------------------------
    rs_sources_anonymous = subscriber_names.isdisjoint(rs_observed_sources)
    claims.append(
        VisibilityClaim(
            "rs",
            "The RS does not know which subscriber has requested a payload "
            "(holds when the anonymization service is in use)",
            (not system.config.use_anonymizer) or rs_sources_anonymous,
            f"retrieval sources seen: {sorted(set(rs_observed_sources))}",
        )
    )
    claims.append(
        VisibilityClaim(
            "rs",
            "The RS can keep track of how many requests have been received "
            "for each encrypted payload",
            rs_stored_total >= 0,
            f"{rs_stored_total} items stored",
        )
    )

    # --- PBE-TS -------------------------------------------------------------
    ts_sources_anonymous = subscriber_names.isdisjoint(system.pbe_ts.observed_sources)
    claims.append(
        VisibilityClaim(
            "pbe_ts",
            "The PBE-TS knows the plaintext predicates generated by subscribers",
            set(p for _, p in system.pbe_ts.observed_predicates) <= interests_plain
            or not system.config.use_anonymizer,
            f"predicates seen: {[p for _, p in system.pbe_ts.observed_predicates]}",
        )
    )
    claims.append(
        VisibilityClaim(
            "pbe_ts",
            "The PBE-TS does not know the binding of subscriber to predicate "
            "(requests arrive via the anonymization service, certificates are "
            "pseudonymous)",
            (not system.config.use_anonymizer) or (
                ts_sources_anonymous
                and subscriber_names.isdisjoint(system.pbe_ts.observed_subjects)
            ),
            f"sources: {sorted(set(system.pbe_ts.observed_sources))}, "
            f"subjects: {sorted(set(system.pbe_ts.observed_subjects))}",
        )
    )

    # --- eavesdropper (wire trace) -------------------------------------------
    only_tls = all(record.wire_label == "tls" for record in system.network.trace)
    claims.append(
        VisibilityClaim(
            "eavesdropper",
            "Eavesdroppers learn nothing about subscriptions, metadata or "
            "payload content (endpoints and sizes only)",
            only_tls,
            f"{len(system.network.trace)} wire records, all protected frames",
        )
    )

    # --- subscribers ------------------------------------------------------------
    nonmatching_got_nothing = all(
        not subscriber.stats.deliveries
        for subscriber in system.subscribers.values()
        if subscriber.stats.matches == 0
    )
    claims.append(
        VisibilityClaim(
            "subscriber",
            "A subscriber whose predicate never matched received no content "
            "(and only ciphertext broadcasts)",
            nonmatching_got_nothing,
            "checked every zero-match subscriber's delivery log",
        )
    )

    # --- publisher ----------------------------------------------------------------
    claims.append(
        VisibilityClaim(
            "publisher",
            "The publisher does not know whether its content matched or who "
            "received it",
            all(
                not hasattr(record, "matched")
                for publisher in system.publishers.values()
                for record in publisher.published
            ),
            "publication records carry no delivery/matching facts",
        )
    )
    return VisibilityReport(claims)
