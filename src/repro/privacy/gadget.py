"""Gadgets: information-dependency graphs underneath encryption schemes.

Paper §6.1: "A gadget is a simple mechanism we developed to capture
information dependency underneath an encryption scheme. ... a gadget is a
directed graph G = (V, E) where each node in V is either an information
element or an AND gate. ... a directed edge from node u to node v means
that information element v depends on u.  When u is the & gate, then v
depends on all information elements that are incident to u."

This module provides the graph structure plus builders for the four
gadgets P3S uses (PBE — Fig. 5 —, CP-ABE, public-key, symmetric-key),
including the *extended* nodes the paper draws with broken edges
(publisher/subscriber identity associations) and the orange *attack*
edges (token probing; token accumulation).

Node names are plain strings.  Conventions from the paper: lower-case for
single elements (``x``, ``y``, ``t_y``), upper-case for "the set of all
possible" elements (``X``, ``Y``, ``T_Y``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import networkx as nx

from ..errors import ReproError

__all__ = ["Gadget", "pbe_gadget", "cpabe_gadget", "pke_gadget", "symmetric_gadget"]


class GadgetError(ReproError):
    """Malformed gadget construction."""


@dataclass(frozen=True)
class _GateRecord:
    gate_id: str
    inputs: tuple[str, ...]
    output: str
    label: str
    attack: bool


class Gadget:
    """One information-dependency graph with AND gates."""

    def __init__(self, name: str):
        self.name = name
        self.graph = nx.DiGraph()
        self._gate_counter = itertools.count(1)

    # -- construction -------------------------------------------------------

    def add_element(self, name: str, sensitive: bool = False, description: str = "") -> None:
        """An information element; ``sensitive`` marks the paper's dark-border
        nodes (information subject to privacy requirements)."""
        if self.graph.has_node(name) and self.graph.nodes[name].get("kind") == "and":
            raise GadgetError(f"{name!r} already exists as a gate")
        self.graph.add_node(name, kind="info", sensitive=sensitive, description=description)

    def add_gate(
        self, inputs: list[str], output: str, label: str, attack: bool = False
    ) -> str:
        """An AND gate: ``output`` is derivable from *all* ``inputs`` together.

        ``attack=True`` marks the paper's orange edges — derivations that
        represent an attack rather than intended protocol operation.
        """
        if not inputs:
            raise GadgetError("a gate needs at least one input")
        for node in list(inputs) + [output]:
            if not self.graph.has_node(node):
                self.add_element(node)
        gate_id = f"&{next(self._gate_counter)}:{label}"
        self.graph.add_node(gate_id, kind="and", label=label, attack=attack)
        for node in inputs:
            self.graph.add_edge(node, gate_id)
        self.graph.add_edge(gate_id, output)
        return gate_id

    def add_dependency(self, source: str, target: str, attack: bool = False) -> None:
        """A single-input dependency (target derivable from source alone)."""
        self.add_gate([source], target, label=f"{source}->{target}", attack=attack)

    # -- introspection ----------------------------------------------------------

    def elements(self) -> list[str]:
        return [n for n, data in self.graph.nodes(data=True) if data.get("kind") == "info"]

    def sensitive_elements(self) -> list[str]:
        return [
            n
            for n, data in self.graph.nodes(data=True)
            if data.get("kind") == "info" and data.get("sensitive")
        ]

    def gates(self, include_attacks: bool = True) -> list[_GateRecord]:
        records = []
        for node, data in self.graph.nodes(data=True):
            if data.get("kind") != "and":
                continue
            if not include_attacks and data.get("attack"):
                continue
            inputs = tuple(sorted(self.graph.predecessors(node)))
            outputs = list(self.graph.successors(node))
            if len(outputs) != 1:
                raise GadgetError(f"gate {node} must have exactly one output")
            records.append(
                _GateRecord(node, inputs, outputs[0], data.get("label", ""), bool(data.get("attack")))
            )
        return records

    def to_dot(self) -> str:
        """Graphviz DOT rendering (reproduces Fig. 5's visual conventions:
        dark-bordered sensitive elements, boxed AND gates, dashed attack
        edges)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for node, data in self.graph.nodes(data=True):
            if data.get("kind") == "and":
                style = "shape=box, label=\"&\""
                if data.get("attack"):
                    style += ", color=orange"
                lines.append(f'  "{node}" [{style}];')
            else:
                style = "shape=ellipse"
                if data.get("sensitive"):
                    style += ", penwidth=3"
                lines.append(f'  "{node}" [{style}];')
        for src, dst in self.graph.edges():
            attack = self.graph.nodes[src].get("attack") or self.graph.nodes[dst].get("attack")
            attrs = " [style=dashed, color=orange]" if attack else ""
            lines.append(f'  "{src}" -> "{dst}"{attrs};')
        lines.append("}")
        return "\n".join(lines)

    def merge(self, other: "Gadget", rename: dict[str, str] | None = None) -> None:
        """Graft another gadget into this one (shared names fuse).

        ``rename`` maps the other gadget's node names onto this one's —
        e.g. the PBE gadget's plaintext ``m`` is the P3S ``guid``.
        """
        rename = rename or {}
        for element in other.elements():
            target = rename.get(element, element)
            sensitive = other.graph.nodes[element].get("sensitive", False)
            if not self.graph.has_node(target):
                self.add_element(target, sensitive=sensitive)
            elif sensitive:
                self.graph.nodes[target]["sensitive"] = True
        for gate in other.gates():
            self.add_gate(
                [rename.get(i, i) for i in gate.inputs],
                rename.get(gate.output, gate.output),
                label=f"{other.name}:{gate.label}",
                attack=gate.attack,
            )


# ---------------------------------------------------------------------------
# The four scheme gadgets (paper §6.1)
# ---------------------------------------------------------------------------

def pbe_gadget() -> Gadget:
    """The PBE gadget of Fig. 5, with extensions and attack edges.

    Elements: message ``m`` (the GUID in P3S), attribute vector ``x``
    (metadata), interest vector ``y``, keys, ciphertext ``ct_pbe``, token
    ``t_y``; plus the associations ``a_pid_x`` (publisher↔metadata) and
    ``a_sid_y`` (subscriber↔interest) drawn with broken edges.
    """
    g = Gadget("pbe")
    g.add_element("m", sensitive=True, description="plaintext message (GUID in P3S)")
    g.add_element("x", sensitive=True, description="attribute vector / metadata")
    g.add_element("y", sensitive=True, description="interest vector")
    g.add_element("pk_pbe", description="PBE master public key")
    g.add_element("sk_pbe", description="PBE master secret key")
    g.add_element("ct_pbe", description="PBE ciphertext")
    g.add_element("t_y", description="PBE token for interest y")
    g.add_element("X", description="set of all attribute vectors (encrypt capability)")
    g.add_element("Y", description="set of all interest vectors")
    g.add_element("T_Y", description="set of accumulated tokens")
    g.add_element("pid", description="publisher identity")
    g.add_element("sid", description="subscriber identity")
    g.add_element("a_pid_x", sensitive=True, description="association publisher↔metadata")
    g.add_element("a_sid_y", sensitive=True, description="association subscriber↔interest")

    # main operations (Fig. 5 solid structure)
    g.add_gate(["m", "x", "pk_pbe"], "ct_pbe", "Encrypt")
    g.add_gate(["y", "sk_pbe"], "t_y", "GenToken")
    g.add_gate(["ct_pbe", "t_y"], "m", "Query")

    # extended (broken-edge) dependencies
    g.add_gate(["pid", "x"], "a_pid_x", "associate")
    g.add_gate(["sid", "y"], "a_sid_y", "associate")

    # attack edges (orange): no token security —
    # (1) token + ability to encrypt all X reveals y
    g.add_gate(["t_y", "X", "pk_pbe"], "y", "token-probing", attack=True)
    # (2) tokens accumulated across the interest space reveal x from a
    # ciphertext (T_Y stands for holding tokens spanning much of Y)
    g.add_gate(["ct_pbe", "T_Y"], "x", "token-accumulation", attack=True)
    return g


def cpabe_gadget() -> Gadget:
    """CP-ABE: the policy travels in the clear; decryption needs satisfying
    attributes."""
    g = Gadget("cpabe")
    g.add_element("payload", sensitive=True)
    g.add_element("policy", description="access policy — NOT hidden")
    g.add_element("pp_abe", description="CP-ABE public parameters")
    g.add_element("msk_abe", description="CP-ABE master key")
    g.add_element("attrs", description="a participant's attribute set")
    g.add_element("sk_attrs", description="CP-ABE secret key for attrs")
    g.add_element("ct_abe", description="CP-ABE ciphertext")
    g.add_gate(["payload", "policy", "pp_abe"], "ct_abe", "Encrypt")
    g.add_gate(["msk_abe", "attrs"], "sk_attrs", "KeyGen")
    g.add_gate(["ct_abe", "sk_attrs"], "payload", "Decrypt")
    # the policy is readable straight off the ciphertext
    g.add_dependency("ct_abe", "policy")
    return g


def pke_gadget() -> Gadget:
    """Public-key encryption (requests to RS / PBE-TS)."""
    g = Gadget("pke")
    g.add_element("pke_plain", sensitive=True)
    g.add_element("pke_pk")
    g.add_element("pke_sk")
    g.add_element("pke_ct")
    g.add_gate(["pke_plain", "pke_pk"], "pke_ct", "Encrypt")
    g.add_gate(["pke_ct", "pke_sk"], "pke_plain", "Decrypt")
    return g


def symmetric_gadget() -> Gadget:
    """Symmetric encryption under a session key K_s."""
    g = Gadget("symmetric")
    g.add_element("sym_plain", sensitive=True)
    g.add_element("k_s", description="session key")
    g.add_element("sym_ct")
    g.add_gate(["sym_plain", "k_s"], "sym_ct", "Seal")
    g.add_gate(["sym_ct", "k_s"], "sym_plain", "Open")
    return g
