"""Privacy analysis: the paper's gadget framework, made executable.

* :mod:`repro.privacy.gadget` — information-dependency graphs (Fig. 5).
* :mod:`repro.privacy.knowledge` — knowledge closure + derivations.
* :mod:`repro.privacy.adversary` — HBC / colluding / malicious models.
* :mod:`repro.privacy.analysis` — the P3S analysis, the two token
  attacks run against the real HVE scheme, and the time-stamped-token
  mitigation.
"""

from .gadget import Gadget, cpabe_gadget, pbe_gadget, pke_gadget, symmetric_gadget
from .knowledge import Derivation, closure, derivation
from .adversary import ParticipantView, ThreatModel, combine_views
from .analysis import (
    Exposure,
    PrivacyReport,
    analyze,
    build_p3s_gadget,
    default_views,
    epoch_of,
    token_accumulation_attack,
    token_probing_attack,
    with_epoch_attribute,
)
from .trace import VisibilityClaim, VisibilityReport, trace_visibility

__all__ = [
    "Gadget",
    "pbe_gadget",
    "cpabe_gadget",
    "pke_gadget",
    "symmetric_gadget",
    "closure",
    "derivation",
    "Derivation",
    "ThreatModel",
    "ParticipantView",
    "combine_views",
    "analyze",
    "PrivacyReport",
    "Exposure",
    "build_p3s_gadget",
    "default_views",
    "token_probing_attack",
    "token_accumulation_attack",
    "with_epoch_attribute",
    "epoch_of",
    "trace_visibility",
    "VisibilityReport",
    "VisibilityClaim",
]
