"""Threat models and participant views (paper §6.1 definitions).

* **Honest-but-curious (HBC)** — "only makes well-intentioned requests
  (honest) but remembers everything that was sent to them (curious)".
* **Colluding HBC** — HBC participants that pool what they know
  ("colluding HBC participants may share information without being
  malicious").
* **Malicious** — additionally "attempts to eavesdrop, performs replay and
  man-in-the-middle attacks, and masquerades as other participants"; in
  gadget terms a malicious non-third-party can obtain *any* token
  (masquerading as an arbitrary subscriber) and encrypt *any* metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ThreatModel", "ParticipantView", "combine_views", "P3S_ROLES"]


class ThreatModel(enum.Enum):
    HBC = "honest-but-curious"
    COLLUDING_HBC = "colluding-hbc"
    MALICIOUS = "malicious"


P3S_ROLES = ("publisher", "subscriber", "ds", "rs", "pbe_ts", "anonymizer", "eavesdropper")


@dataclass
class ParticipantView:
    """What one participant starts out knowing, per its protocol role.

    ``base_knowledge`` holds gadget element names; ``capabilities`` holds
    the ability-style elements (``X`` = can encrypt arbitrary metadata,
    ``Y``/``T_Y`` = can request / has accumulated many tokens) that attack
    gates consume.
    """

    name: str
    role: str
    base_knowledge: set[str] = field(default_factory=set)
    capabilities: set[str] = field(default_factory=set)

    def knowledge_under(self, model: ThreatModel) -> set[str]:
        """Initial knowledge for the closure under a threat model."""
        knowledge = set(self.base_knowledge) | set(self.capabilities)
        if model is ThreatModel.MALICIOUS and self.role in ("publisher", "subscriber"):
            # a malicious non-3rd-party can masquerade as any subscriber →
            # obtain any token (t_y, and over time the set T_Y); and any
            # legitimate client can encrypt arbitrary metadata (X).
            knowledge |= {"t_y", "T_Y", "Y", "X", "pk_pbe"}
        return knowledge


def combine_views(views: list[ParticipantView], name: str = "coalition") -> ParticipantView:
    """The pooled view of colluding participants.

    Collusion unions knowledge; the paper notes this "does not reveal any
    more information than the union of the information revealed by them
    individually" *except* where pooled tokens cross attack thresholds —
    which the ``T_Y`` capability models: a coalition holding many tokens
    gains it.
    """
    combined = ParticipantView(name=name, role="coalition")
    token_holders = 0
    for view in views:
        combined.base_knowledge |= view.base_knowledge
        combined.capabilities |= view.capabilities
        if "t_y" in view.base_knowledge:
            token_holders += 1
    if token_holders >= 2:
        # pooled tokens begin to cover the interest space
        combined.capabilities.add("T_Y")
    return combined
