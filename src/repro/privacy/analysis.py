"""The P3S privacy analysis: gadget tracing + executable attacks.

Three layers, mirroring §6.1:

1. **Structural analysis** — :func:`build_p3s_gadget` merges the four
   scheme gadgets into the protocol-level dependency graph;
   :func:`default_views` encodes what each participant role is privy to;
   :func:`analyze` closes each view's knowledge and reports which
   *sensitive* elements each role can reach under each threat model.

2. **Executable attacks** — the two weaknesses the gadget reveals are
   implemented against the *real* HVE scheme:
   :func:`token_probing_attack` (no token security: a token plus the
   ability to encrypt recovers the interest vector) and
   :func:`token_accumulation_attack` (a large token set recovers the
   attribute vector of any ciphertext).

3. **Mitigation** — :func:`with_epoch_attribute` implements the paper's
   proposed fix ("time-stamp publications and tokens, making tokens
   active only within a configurable period of time ... using time as an
   additional metadata attribute"), giving token expiry/revocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaError
from ..pbe.hve import HVE, HVECiphertext, HVEMasterKey, HVEPublicKey, HVEToken
from ..pbe.schema import ANY, AttributeSpec, Interest, MetadataSchema
from .adversary import ParticipantView, ThreatModel, combine_views
from .gadget import Gadget, cpabe_gadget, pbe_gadget, pke_gadget, symmetric_gadget
from .knowledge import Derivation, closure, derivation

__all__ = [
    "build_p3s_gadget",
    "default_views",
    "analyze",
    "PrivacyReport",
    "Exposure",
    "token_probing_attack",
    "token_accumulation_attack",
    "with_epoch_attribute",
    "epoch_of",
]


# ---------------------------------------------------------------------------
# 1. Structural analysis
# ---------------------------------------------------------------------------

def build_p3s_gadget() -> Gadget:
    """The protocol-level gadget: PBE + CP-ABE + PKE + symmetric, fused.

    Renames fuse the scheme gadgets onto P3S's information elements: the
    PBE plaintext *is* the GUID; the CP-ABE plaintext *is* (GUID,
    payload); the RS hands out ``ct_abe`` to anyone presenting the GUID.
    """
    g = Gadget("p3s")
    g.merge(pbe_gadget(), rename={"m": "guid"})
    g.merge(cpabe_gadget())
    g.merge(pke_gadget())
    g.merge(symmetric_gadget())
    # Retrieval: knowing the GUID and being able to reach the RS yields the
    # CP-ABE ciphertext (that is the whole point of the PBE match).
    g.add_element("rs_access", description="ability to send retrieval requests to the RS")
    g.add_gate(["guid", "rs_access"], "ct_abe", "RS-Retrieve")
    return g


def default_views(use_anonymizer: bool = True) -> dict[str, ParticipantView]:
    """Per-role initial knowledge, straight from the §4.3 message flows."""
    views = {
        "publisher": ParticipantView(
            name="publisher",
            role="publisher",
            base_knowledge={
                "guid", "x", "payload", "policy", "pp_abe", "pk_pbe", "pid",
                "a_pid_x", "ct_pbe", "ct_abe",
            },
            capabilities={"X"},  # publishers encrypt arbitrary metadata
        ),
        "subscriber": ParticipantView(
            name="subscriber",
            role="subscriber",
            base_knowledge={
                "y", "sid", "a_sid_y", "t_y", "ct_pbe", "attrs", "sk_attrs",
                "rs_access", "k_s",
            },
        ),
        "ds": ParticipantView(
            name="ds",
            role="ds",
            base_knowledge={"ct_pbe", "ct_abe", "guid", "pid"},
        ),
        "rs": ParticipantView(
            name="rs",
            role="rs",
            base_knowledge={"ct_abe", "guid", "pke_sk", "rs_access"},
        ),
        "pbe_ts": ParticipantView(
            name="pbe_ts",
            role="pbe_ts",
            # the PBE-TS sees plaintext predicates and holds the master key
            base_knowledge={"y", "sk_pbe", "pk_pbe"},
        ),
        "eavesdropper": ParticipantView(
            name="eavesdropper",
            role="eavesdropper",
            base_knowledge={"guid"},  # footnote 1: GUIDs may travel in the clear
        ),
    }
    if not use_anonymizer:
        # without the anonymizer, PBE-TS and RS see requester identities
        views["pbe_ts"].base_knowledge.add("sid")
        views["rs"].base_knowledge.add("sid")
    return views


@dataclass(frozen=True)
class Exposure:
    """One sensitive element reachable by one participant."""

    participant: str
    element: str
    via_attack: bool
    evidence: tuple[Derivation, ...]


@dataclass
class PrivacyReport:
    """Outcome of one structural analysis run."""

    model: ThreatModel
    exposures: list[Exposure] = field(default_factory=list)

    def exposed(self, participant: str, element: str) -> bool:
        return any(
            e.participant == participant and e.element == element for e in self.exposures
        )

    def exposures_for(self, participant: str) -> list[Exposure]:
        return [e for e in self.exposures if e.participant == participant]


def analyze(
    model: ThreatModel,
    views: dict[str, ParticipantView] | None = None,
    colluding: list[str] | None = None,
) -> PrivacyReport:
    """Close every view's knowledge and collect sensitive-element exposures.

    Knowledge a role starts with (e.g. a subscriber's own interest) is not
    reported as an exposure — only *derived* knowledge is.
    """
    gadget = build_p3s_gadget()
    views = views or default_views()
    if model is ThreatModel.COLLUDING_HBC and colluding:
        pooled = combine_views([views[name] for name in colluding])
        views = dict(views)
        views[pooled.name] = pooled
    include_attacks = model is not ThreatModel.HBC or True
    # Attack gates encode what a participant COULD compute from what it
    # holds; under plain HBC the capabilities simply are not present, so
    # leaving attack gates enabled is sound and keeps the analysis uniform.
    report = PrivacyReport(model=model)
    for name, view in views.items():
        initial = view.knowledge_under(model)
        closed, _ = closure(gadget, initial, include_attacks=include_attacks)
        for element in gadget.sensitive_elements():
            if element in closed and element not in initial:
                evidence = derivation(gadget, initial, element) or []
                report.exposures.append(
                    Exposure(
                        participant=name,
                        element=element,
                        via_attack=any(step.attack for step in evidence),
                        evidence=tuple(evidence),
                    )
                )
    return report


# ---------------------------------------------------------------------------
# 2. Executable attacks (real crypto)
# ---------------------------------------------------------------------------

def token_probing_attack(
    hve: HVE,
    public_key: HVEPublicKey,
    token: HVEToken,
    schema: MetadataSchema,
) -> Interest:
    """Recover a token's interest from encrypt capability alone (§6.1).

    "If a participant is able to obtain a token t_y and create encrypted
    metadata, it will be able to reveal y by creating encrypted metadata
    for all attribute vectors and test them against the token."

    Strategy: exhaustively scan the metadata space for one matching
    vector, then flip each attribute to a different value — if the token
    still matches, that attribute is a wildcard.  Returns the recovered
    :class:`Interest`.  Raises :class:`SchemaError` if no vector matches
    (not a token from this schema/key).
    """
    probe = b"probe"

    def matches(metadata: dict[str, str]) -> bool:
        ciphertext = hve.encrypt(public_key, schema.encode_metadata(metadata), probe)
        return hve.query(token, ciphertext) is not None

    base = _find_matching_metadata(schema, matches)
    if base is None:
        raise SchemaError("token matches nothing in this metadata space")
    constraints: dict[str, object] = {}
    for spec in schema.attributes:
        alternative = next(v for v in spec.values if v != base[spec.name])
        flipped = dict(base)
        flipped[spec.name] = alternative
        if matches(flipped):
            constraints[spec.name] = ANY
        else:
            constraints[spec.name] = base[spec.name]
    return Interest(constraints)


def _find_matching_metadata(schema: MetadataSchema, matches) -> dict[str, str] | None:
    """Depth-first scan of the metadata space for one matching assignment."""

    def recurse(index: int, partial: dict[str, str]) -> dict[str, str] | None:
        if index == len(schema.attributes):
            return dict(partial) if matches(partial) else None
        spec = schema.attributes[index]
        for value in spec.values:
            partial[spec.name] = value
            found = recurse(index + 1, partial)
            if found is not None:
                return found
        del partial[spec.name]
        return None

    return recurse(0, {})


def token_accumulation_attack(
    hve: HVE,
    accumulated_tokens: dict[tuple[str, str], HVEToken],
    ciphertext: HVECiphertext,
    schema: MetadataSchema,
) -> dict[str, str]:
    """Recover a ciphertext's metadata from a large token collection (§6.1).

    "If a subscriber can subscribe to all or a significant part of the
    space of all possible subscription interests ... he can test any given
    ciphertext against all tokens to reveal the attribute vector x."

    ``accumulated_tokens`` maps ``(attribute, value)`` to a token for the
    single-attribute equality predicate — the realistic accumulation
    pattern (one subscription per attribute value over time).
    """
    recovered: dict[str, str] = {}
    for spec in schema.attributes:
        for value in spec.values:
            token = accumulated_tokens.get((spec.name, value))
            if token is not None and hve.query(token, ciphertext) is not None:
                recovered[spec.name] = value
                break
    return recovered


# ---------------------------------------------------------------------------
# 3. Mitigation: time-stamped tokens (epoch attribute)
# ---------------------------------------------------------------------------

def with_epoch_attribute(schema: MetadataSchema, num_epochs: int = 16) -> MetadataSchema:
    """Extend a schema with a rotating ``epoch`` attribute.

    Publishers stamp each item with the current epoch; the PBE-TS pins
    every issued token to the epoch of issue (never wildcard).  A token
    therefore stops matching once the epoch rotates — the paper's token
    revocation mechanism, at the cost of re-requesting tokens each epoch
    and time-synchronised clients.
    """
    if num_epochs < 2:
        raise SchemaError("need at least 2 epochs")
    epoch_values = tuple(f"e{i}" for i in range(num_epochs))
    return MetadataSchema(list(schema.attributes) + [AttributeSpec("epoch", epoch_values)])


def epoch_of(now: float, epoch_length_s: float, num_epochs: int = 16) -> str:
    """The epoch value for simulation time ``now``."""
    return f"e{int(now // epoch_length_s) % num_epochs}"
