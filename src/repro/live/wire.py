"""Binary wire format for the live TCP substrate.

One **frame** is what the simulator calls a :class:`~repro.net.network.Message`:
a message type, a headers dict, and a payload.  On the wire it is:

.. code-block:: text

    frame   := u16 header_len || header_json || payload
    header  := {"t": msg_type, "s": src, "h": {...headers...}}   (UTF-8 JSON)
    payload := tag u8 || body                                    (see codecs below)

Frames never travel bare: the secure channel (:mod:`repro.live.channel`)
wraps each one in an authenticated-encryption record with a sequence
number, and prefixes the record with a u32 length.  Everything in the
header must therefore be JSON-serializable; the observability span
context (:class:`repro.obs.tracing.SpanContext`) is converted to its
wire form on encode and rebuilt on decode, which is what lets one trace
tree span multiple OS processes.

Payload codecs cover exactly the object vocabulary the P3S protocol puts
on the wire: raw bytes, the three :mod:`repro.core.messages` dataclasses,
JMS frames (which nest one of the others as their body), strings and
``None``.  Unknown payload types are a :class:`~repro.errors.TransportError`
at encode time — nothing silently pickles.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from ..core.messages import AnonEnvelope, EncryptedMetadata, PayloadSubmission
from ..errors import TransportError
from ..mq.messages import JmsFrame
from ..net.transport import TransportMessage
from ..obs.tracing import CONTEXT_HEADER, SpanContext

__all__ = [
    "encode_frame",
    "decode_frame",
    "encode_payload",
    "decode_payload",
    "MAX_FRAME_BYTES",
]

MAX_FRAME_BYTES = 16 * 1024 * 1024  # sanity bound on one record

_TAG_NONE = 0
_TAG_BYTES = 1
_TAG_METADATA = 2
_TAG_SUBMISSION = 3
_TAG_ANON = 4
_TAG_JMS = 5
_TAG_STR = 6


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _unpack_bytes(buffer: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(buffer):
        raise TransportError("truncated frame: missing length prefix")
    (length,) = struct.unpack_from(">I", buffer, offset)
    offset += 4
    if offset + length > len(buffer):
        raise TransportError("truncated frame: body shorter than its length prefix")
    return buffer[offset : offset + length], offset + length


def _pack_str(text: str) -> bytes:
    return _pack_bytes(text.encode("utf-8"))


def _unpack_str(buffer: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _unpack_bytes(buffer, offset)
    return raw.decode("utf-8"), offset


# -- payload codecs ------------------------------------------------------------


def encode_payload(payload: Any) -> bytes:
    if payload is None:
        return bytes([_TAG_NONE])
    if isinstance(payload, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + bytes(payload)
    if isinstance(payload, str):
        return bytes([_TAG_STR]) + payload.encode("utf-8")
    if isinstance(payload, EncryptedMetadata):
        return (
            bytes([_TAG_METADATA])
            + struct.pack(">I", payload.publication_id)
            + payload.hve_bytes
        )
    if isinstance(payload, PayloadSubmission):
        return (
            bytes([_TAG_SUBMISSION])
            + _pack_bytes(payload.guid)
            + struct.pack(">d", payload.ttl_s)
            + payload.ciphertext
        )
    if isinstance(payload, AnonEnvelope):
        return (
            bytes([_TAG_ANON])
            + _pack_str(payload.dst)
            + _pack_str(payload.inner_type)
            + encode_payload(payload.inner_payload)
        )
    if isinstance(payload, JmsFrame):
        return (
            bytes([_TAG_JMS])
            + _pack_str(payload.topic)
            + struct.pack(">Q", payload.message_id)
            + struct.pack(">I", payload.body_size)
            + _pack_bytes(_encode_headers(payload.headers))
            + encode_payload(payload.body)
        )
    raise TransportError(f"no wire codec for payload type {type(payload).__name__}")


def decode_payload(data: bytes) -> Any:
    if not data:
        raise TransportError("empty payload encoding")
    tag, body = data[0], data[1:]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BYTES:
        return body
    if tag == _TAG_STR:
        return body.decode("utf-8")
    if tag == _TAG_METADATA:
        if len(body) < 4:
            raise TransportError("truncated EncryptedMetadata payload")
        (publication_id,) = struct.unpack_from(">I", body, 0)
        return EncryptedMetadata(hve_bytes=body[4:], publication_id=publication_id)
    if tag == _TAG_SUBMISSION:
        guid, offset = _unpack_bytes(body, 0)
        if offset + 8 > len(body):
            raise TransportError("truncated PayloadSubmission payload")
        (ttl_s,) = struct.unpack_from(">d", body, offset)
        return PayloadSubmission(guid=guid, ciphertext=body[offset + 8 :], ttl_s=ttl_s)
    if tag == _TAG_ANON:
        dst, offset = _unpack_str(body, 0)
        inner_type, offset = _unpack_str(body, offset)
        return AnonEnvelope(
            dst=dst, inner_type=inner_type, inner_payload=decode_payload(body[offset:])
        )
    if tag == _TAG_JMS:
        topic, offset = _unpack_str(body, 0)
        if offset + 12 > len(body):
            raise TransportError("truncated JmsFrame payload")
        (message_id,) = struct.unpack_from(">Q", body, offset)
        (body_size,) = struct.unpack_from(">I", body, offset + 8)
        headers_raw, offset = _unpack_bytes(body, offset + 12)
        return JmsFrame(
            topic=topic,
            body=decode_payload(body[offset:]),
            body_size=body_size,
            message_id=message_id,
            headers=_decode_headers(headers_raw),
        )
    raise TransportError(f"unknown payload tag {tag}")


# -- header codec --------------------------------------------------------------


def _encode_headers(headers: dict[str, Any]) -> bytes:
    wire: dict[str, Any] = {}
    for key, value in headers.items():
        if isinstance(value, SpanContext):
            wire[key] = value.to_wire()
        elif isinstance(value, (str, int, float, bool)) or value is None:
            wire[key] = value
        else:
            raise TransportError(
                f"header {key!r} of type {type(value).__name__} is not wire-safe"
            )
    return json.dumps(wire, separators=(",", ":")).encode("utf-8")


def _decode_headers(raw: bytes) -> dict[str, Any]:
    headers = json.loads(raw.decode("utf-8")) if raw else {}
    context = SpanContext.from_wire(headers.get(CONTEXT_HEADER))
    if context is not None:
        headers[CONTEXT_HEADER] = context
    return headers


# -- frame codec ---------------------------------------------------------------


def encode_frame(message: TransportMessage) -> bytes:
    """Serialize one frame (the plaintext of one channel record)."""
    header = json.dumps(
        {"t": message.msg_type, "s": message.src},
        separators=(",", ":"),
    ).encode("utf-8")
    header_block = _pack_bytes(_encode_headers(message.headers))
    return (
        struct.pack(">H", len(header))
        + header
        + header_block
        + encode_payload(message.payload)
    )


def decode_frame(data: bytes) -> TransportMessage:
    """Parse one channel-record plaintext back into a frame."""
    if len(data) < 2:
        raise TransportError("truncated frame: missing header length")
    (header_len,) = struct.unpack_from(">H", data, 0)
    if 2 + header_len > len(data):
        raise TransportError("truncated frame: header shorter than declared")
    try:
        meta = json.loads(data[2 : 2 + header_len].decode("utf-8"))
        msg_type, src = meta["t"], meta.get("s", "")
    except (ValueError, KeyError) as exc:
        raise TransportError(f"malformed frame header: {exc}") from exc
    headers_raw, offset = _unpack_bytes(data, 2 + header_len)
    return TransportMessage(
        msg_type=msg_type,
        payload=decode_payload(data[offset:]),
        src=src,
        headers=_decode_headers(headers_raw),
    )
