"""Substrate-agnostic P3S scenarios, runnable on the simulator or live.

A :class:`Scenario` describes *what happens* — who subscribes to what,
who publishes what under which policy — with no reference to a substrate.
:func:`run_on_simulator` executes it inside the discrete-event simulator
(:class:`repro.core.system.P3SSystem`); :func:`run_on_live` executes it
over real TCP sockets (:class:`repro.live.deployment.LiveDeployment`).
Both return the same shape — per-subscriber sorted delivered plaintexts —
so a test can assert the two substrates deliver identical content
(GUIDs and ciphertexts are randomized per run; the *plaintext delivery
sets* are the substrate-independent observable).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..core.config import P3SConfig
from ..core.system import P3SSystem
from ..pbe.schema import Interest
from .deployment import LiveDeployment

__all__ = [
    "SubscriberSpec",
    "PublicationSpec",
    "Scenario",
    "default_scenario",
    "run_on_simulator",
    "run_on_live",
    "run_live",
]


@dataclass(frozen=True)
class SubscriberSpec:
    """One subscriber: CP-ABE attributes + the interests it subscribes."""

    name: str
    attributes: frozenset[str]
    interests: tuple[Interest, ...]


@dataclass(frozen=True)
class PublicationSpec:
    """One publication: metadata, plaintext payload, CP-ABE policy."""

    metadata: tuple[tuple[str, str], ...]
    payload: bytes
    policy: str
    ttl_s: float = 3600.0

    @property
    def metadata_dict(self) -> dict[str, str]:
        return dict(self.metadata)


@dataclass(frozen=True)
class Scenario:
    """A full publish-subscribe episode, independent of substrate."""

    subscribers: tuple[SubscriberSpec, ...]
    publications: tuple[PublicationSpec, ...]
    publisher_name: str = "pub"


def _metadata(**overrides: str) -> tuple[tuple[str, str], ...]:
    base = {f"attr{i:02d}": "v00" for i in range(10)}
    base.update(overrides)
    return tuple(sorted(base.items()))


def default_scenario() -> Scenario:
    """The demo episode: ARA registration, subscription, publication,
    matching, retrieval, delivery — with a match, a multi-attribute
    match, a non-match, and an access-denied case all exercised."""
    return Scenario(
        subscribers=(
            SubscriberSpec(
                "alice", frozenset({"org:acme"}), (Interest({"attr00": "v01"}),)
            ),
            SubscriberSpec(
                "bobby",
                frozenset({"org:acme", "role:analyst"}),
                (Interest({"attr01": "v02", "attr02": "v03"}),),
            ),
            SubscriberSpec(
                "carol", frozenset({"org:other"}), (Interest({"attr00": "v01"}),)
            ),
        ),
        publications=(
            PublicationSpec(
                _metadata(attr00="v01"), b"breaking: acme merger", "org:acme"
            ),
            PublicationSpec(
                _metadata(attr01="v02", attr02="v03"),
                b"quarterly analyst brief",
                "org:acme and role:analyst",
            ),
            PublicationSpec(
                _metadata(attr00="v09"), b"nobody subscribed to this", "org:acme"
            ),
        ),
    )


DeliveryMap = dict[str, tuple[bytes, ...]]


def _delivered(subscribers) -> DeliveryMap:
    return {
        name: tuple(sorted(d.payload for d in subscriber.stats.deliveries))
        for name, subscriber in subscribers.items()
    }


def run_on_simulator(scenario: Scenario, config: P3SConfig | None = None) -> DeliveryMap:
    """Execute ``scenario`` in the discrete-event simulator."""
    system = P3SSystem(config or P3SConfig())
    for spec in scenario.subscribers:
        subscriber = system.add_subscriber(spec.name, attributes=set(spec.attributes))
        for interest in spec.interests:
            system.subscribe(subscriber, interest)
    system.run()
    publisher = system.add_publisher(scenario.publisher_name)
    for publication in scenario.publications:
        publisher.publish(
            publication.metadata_dict,
            publication.payload,
            policy=publication.policy,
            ttl_s=publication.ttl_s,
        )
    system.run()
    result = _delivered(system.subscribers)
    system.ds.close_match_pool()
    return result


async def run_on_live(
    scenario: Scenario,
    config: P3SConfig | None = None,
    expected: DeliveryMap | None = None,
    timeout_s: float = 60.0,
    settle_s: float = 0.2,
) -> DeliveryMap:
    """Execute ``scenario`` over real TCP sockets on localhost.

    ``expected`` (e.g. a prior :func:`run_on_simulator` result) tells the
    runner how many deliveries to await per subscriber; without it the
    runner waits ``settle_s`` of quiescence after the last publication —
    fine for demos, racy for assertions.
    """
    deployment = LiveDeployment(config)
    await deployment.start()
    try:
        for spec in scenario.subscribers:
            subscriber = await deployment.add_subscriber(
                spec.name, set(spec.attributes)
            )
            for interest in spec.interests:
                await subscriber.subscribe(interest)
        publisher = await deployment.add_publisher(scenario.publisher_name)
        for publication in scenario.publications:
            await publisher.publish(
                publication.metadata_dict,
                publication.payload,
                policy=publication.policy,
                ttl_s=publication.ttl_s,
            )
        if expected is not None:
            await asyncio.gather(
                *(
                    deployment.subscribers[name].wait_for_deliveries(
                        len(payloads), timeout_s
                    )
                    for name, payloads in expected.items()
                    if payloads
                )
            )
        # let non-matches, counters, and the RS store settle
        await asyncio.sleep(settle_s)
        return _delivered(deployment.subscribers)
    finally:
        await deployment.close()


def run_live(
    scenario: Scenario,
    config: P3SConfig | None = None,
    expected: DeliveryMap | None = None,
    timeout_s: float = 60.0,
) -> DeliveryMap:
    """Synchronous wrapper: run the live scenario in a fresh event loop."""
    return asyncio.run(run_on_live(scenario, config, expected, timeout_s))
