"""Live publisher and subscriber clients.

These are the TCP counterparts of :class:`repro.core.publisher.Publisher`
and :class:`repro.core.subscriber.Subscriber`.  All protocol-content
construction is delegated to the substrate-free helpers the simulator
clients use — :func:`~repro.core.publisher.encrypt_metadata_envelope`,
:func:`~repro.core.publisher.encrypt_payload_ciphertext`,
:func:`~repro.core.subscriber.match_tokens`,
:func:`~repro.core.subscriber.open_delivery`, and the
``encode_*``/``decode_*`` request codecs — so a live deployment delivers
exactly what a simulated one delivers for the same scenario.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Callable

from ..abe.hybrid import HybridCPABE
from ..abe.policy import PolicyNode
from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import (
    DecryptionError,
    GuidMismatchError,
    RetrievalError,
    TokenRequestError,
    TransportError,
)
from ..cluster.router import ds_shard_for, ds_shards_of, rs_replicas_for
from ..core.ara import PublisherCredentials, SubscriberCredentials
from ..core.guid import random_guid
from ..core.messages import (
    KIND_METADATA,
    KIND_PAYLOAD,
    KIND_TOKEN_REG,
    KIND_TOKEN_UNREG,
    RPC_ANON_FORWARD,
    RPC_RETRIEVE,
    RPC_TOKEN_REQUEST,
    AnonEnvelope,
    EncryptedMetadata,
    PayloadSubmission,
)
from ..core.pbe_ts import decode_token_response, encode_token_request
from ..core.publisher import (
    PublicationRecord,
    encrypt_metadata_envelope,
    encrypt_payload_ciphertext,
)
from ..core.rs import decode_retrieval_response, encode_retrieval_request
from ..core.subscriber import (
    Delivery,
    GuidDeduper,
    SubscriberStats,
    match_tokens,
    open_delivery,
)
from ..mq import messages as frames
from ..mq.messages import JmsFrame
from ..obs import profile as obs
from ..pbe.hve import HVE, HVEToken
from ..pbe.schema import Interest
from ..pbe.serialize import (
    deserialize_hve_ciphertext,
    deserialize_hve_token,
    serialize_hve_token,
)
from .rpc import LiveRpcEndpoint

__all__ = ["LivePublisher", "LiveSubscriber"]


class LivePublisher:
    """One P3S publisher speaking the live JMS dialect to the DS."""

    _publication_ids = itertools.count(1)
    _frame_ids = itertools.count(1)

    def __init__(
        self,
        credentials: PublisherCredentials,
        endpoint: LiveRpcEndpoint,
        group: PairingGroup,
        guid_bytes: int = 16,
        publish_topic: str = "p3s.publish",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.credentials = credentials
        self.endpoint = endpoint
        self.group = group
        self.guid_bytes = guid_bytes
        self.publish_topic = publish_topic
        self.clock = clock
        self.hve = HVE(group)
        self.cpabe = HybridCPABE(group)
        self.published: list[PublicationRecord] = []

    @property
    def name(self) -> str:
        return self.credentials.name

    @property
    def directory(self):
        return self.credentials.directory

    async def connect(self) -> None:
        """Open the live channel to every DS shard (JMS CONNECT)."""
        for ds_name in ds_shards_of(self.directory):
            await self.endpoint.cast(ds_name, frames.CONNECT, JmsFrame(topic=""))

    async def _send_to_ds(self, body, body_size: int, headers: dict, broker: str) -> None:
        frame = JmsFrame(
            topic=self.publish_topic,
            body=body,
            body_size=body_size,
            message_id=next(self._frame_ids),
            headers=headers,
        )
        await self.endpoint.cast(broker, frames.PUBLISH, frame)

    async def publish(
        self,
        metadata: dict[str, str],
        payload: bytes,
        policy: str | PolicyNode,
        ttl_s: float = 3600.0,
    ) -> PublicationRecord:
        """Run the §4.3 publication protocol over TCP; returns the record."""
        record = PublicationRecord(
            publication_id=next(self._publication_ids),
            guid=random_guid(self.guid_bytes),
            metadata=dict(metadata),
            policy=policy,
            ttl_s=ttl_s,
            submitted_at=self.clock(),
        )
        self.published.append(record)
        # both frames of one publication target the DS shard owning its
        # GUID (single-node directories resolve to the one "ds")
        broker = ds_shard_for(self.directory, record.guid)
        root = obs.start_span(
            "publish", component=self.name, publication_id=record.publication_id
        )

        step = obs.start_span("pbe.encrypt", component=self.name, parent=root)
        with obs.attach(step):
            hve_bytes = encrypt_metadata_envelope(
                self.hve,
                self.group,
                self.credentials.hve_public_key,
                self.credentials.schema,
                record.metadata,
                record.guid,
            )
        record.metadata_bytes = len(hve_bytes)
        obs.end_span(step, bytes=record.metadata_bytes)
        envelope = EncryptedMetadata(
            hve_bytes=hve_bytes, publication_id=record.publication_id
        )
        await self._send_to_ds(
            envelope,
            envelope.wire_size,
            obs.inject({"p3s-kind": KIND_METADATA}, root),
            broker,
        )

        step = obs.start_span("abe.encrypt", component=self.name, parent=root)
        with obs.attach(step):
            ciphertext = encrypt_payload_ciphertext(
                self.cpabe,
                self.group,
                self.credentials.cpabe_public_key,
                record.guid,
                payload,
                record.policy,
            )
        record.payload_bytes = len(ciphertext)
        obs.end_span(step, bytes=record.payload_bytes)
        submission = PayloadSubmission(
            guid=record.guid, ciphertext=ciphertext, ttl_s=record.ttl_s
        )
        await self._send_to_ds(
            submission,
            submission.wire_size,
            obs.inject({"p3s-kind": KIND_PAYLOAD}, root),
            broker,
        )
        obs.end_span(root)
        return record

    async def close(self) -> None:
        await self.endpoint.close()


class LiveSubscriber:
    """One P3S subscriber endpoint on the live substrate.

    The DS pushes ``jms.deliver`` frames back over the connection this
    subscriber opened; each one triggers the same local match → retrieve
    → decrypt pipeline as the simulator subscriber.
    """

    _frame_ids = itertools.count(1)

    def __init__(
        self,
        credentials: SubscriberCredentials,
        endpoint: LiveRpcEndpoint,
        group: PairingGroup,
        use_anonymizer: bool = True,
        guid_bytes: int = 16,
        metadata_topic: str = "p3s.metadata",
        on_payload: Callable[[Delivery], None] | None = None,
        retrieval_retries: int = 3,
        retry_delay_s: float = 0.05,
        delegate_tokens: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.credentials = credentials
        self.endpoint = endpoint
        self.group = group
        self.use_anonymizer = use_anonymizer
        self.guid_bytes = guid_bytes
        self.metadata_topic = metadata_topic
        self.on_payload = on_payload
        self.retrieval_retries = retrieval_retries
        self.retry_delay_s = retry_delay_s
        self.delegate_tokens = delegate_tokens
        self.clock = clock
        self.hve = HVE(group)
        self.cpabe = HybridCPABE(group)
        self.stats = SubscriberStats()
        self.tokens: list[tuple[Interest, HVEToken]] = []
        self._dedup: GuidDeduper | None = GuidDeduper()
        self._delivery_event = asyncio.Event()
        endpoint.serve(frames.DELIVER, self._on_deliver)

    @property
    def name(self) -> str:
        return self.credentials.name

    @property
    def directory(self):
        return self.credentials.directory

    async def connect(self) -> None:
        """JMS CONNECT + SUBSCRIBE to the metadata topic, on every DS
        shard — publications hash to one shard, so a subscriber must
        listen everywhere to see them all."""
        for ds_name in ds_shards_of(self.directory):
            await self.endpoint.cast(ds_name, frames.CONNECT, JmsFrame(topic=""))
            await self.endpoint.cast(
                ds_name, frames.SUBSCRIBE, JmsFrame(topic=self.metadata_topic)
            )

    # -- subscription (Fig. 3) -------------------------------------------------

    async def subscribe(self, interest: Interest) -> HVEToken:
        """Obtain a PBE token for ``interest`` via the live PBE-TS."""
        root = obs.start_span("subscribe", component=self.name)
        session_key = SecretBox.generate_key()
        with obs.attach(root):
            body = encode_token_request(
                session_key, self.credentials.certificate, interest, self.group.zr_bytes
            )
        request = self.directory.pbe_ts_public_key.encrypt(body)
        sealed = await self._anonymized_call(
            self.directory.pbe_ts_name, RPC_TOKEN_REQUEST, request, span=root
        )
        try:
            token_bytes = decode_token_response(session_key, sealed)
        except (TokenRequestError, DecryptionError) as exc:
            obs.end_span(root, status="refused")
            raise TokenRequestError(f"{self.name}: token request failed: {exc}") from exc
        token = deserialize_hve_token(self.group, token_bytes)
        self.tokens.append((interest, token))
        await self._register_with_ds(token, KIND_TOKEN_REG)
        obs.end_span(root, status="ok")
        return token

    async def _register_with_ds(self, token: HVEToken, kind: str) -> None:
        if not self.delegate_tokens:
            return
        data = serialize_hve_token(self.group, token)
        # every shard pre-filters the publications it owns, so the token
        # must be registered with all of them
        for ds_name in ds_shards_of(self.directory):
            frame = JmsFrame(
                topic=self.metadata_topic,
                body=data,
                body_size=len(data),
                message_id=next(self._frame_ids),
                headers={"p3s-kind": kind},
            )
            await self.endpoint.cast(ds_name, frames.PUBLISH, frame)

    async def unsubscribe(self, interest: Interest) -> bool:
        """Drop the local token (and its DS registration, if delegated)."""
        for index, (held, token) in enumerate(self.tokens):
            if held.constraints == interest.constraints:
                del self.tokens[index]
                await self._register_with_ds(token, KIND_TOKEN_UNREG)
                return True
        return False

    # -- metadata matching + retrieval ------------------------------------------

    async def _on_deliver(self, src: str, message) -> None:
        frame: JmsFrame = message.payload
        if frame.topic != self.metadata_topic:
            return
        # ACK on receipt, mirroring the simulator consumer
        # (mq.client.MessageConsumer): the DS's delivered/acked counters
        # are the publish-ack SLO signal
        await self.endpoint.cast(
            src, frames.ACK, JmsFrame(message_id=frame.message_id)
        )
        envelope: EncryptedMetadata = frame.body
        self.stats.metadata_seen += 1
        span = obs.start_span(
            "subscriber.match",
            component=self.name,
            parent=obs.extract(frame.headers),
            publication_id=envelope.publication_id,
        )
        with obs.attach(span):
            ciphertext = deserialize_hve_ciphertext(self.group, envelope.hve_bytes)
            guid, attempts = match_tokens(self.hve, self.tokens, ciphertext)
        obs.end_span(span, matched=guid is not None, attempts=attempts)
        if guid is None:
            self.stats.non_matches += 1
            return
        self.stats.matches += 1
        if self._dedup is not None and self._dedup.seen(guid):
            # duplicated DELIVER frame: this GUID's retrieve pipeline
            # already ran — same at-most-once boundary as the simulator
            self.stats.duplicates_suppressed += 1
            self.stats.duplicate_suppressed_at.append(self.clock())
            obs.record_op("subscriber.duplicate_suppressed")
            return
        await self._retrieve(guid, envelope.publication_id, parent=span)

    async def _retrieve(self, guid: bytes, publication_id: int, parent=None) -> None:
        span = obs.start_span(
            "subscriber.retrieve",
            component=self.name,
            parent=parent,
            publication_id=publication_id,
        )
        ciphertext_bytes = None
        attempt = 0
        # the GUID's replica set, in ring order; successive attempts
        # rotate through it, so a dead/partitioned replica costs one
        # failed attempt before the next one is asked
        replicas = rs_replicas_for(self.directory, guid)
        for attempt in range(self.retrieval_retries + 1):
            if attempt:
                # same race as the simulator: the payload may still be in
                # flight DS→RS when a fast matcher asks for it
                await asyncio.sleep(self.retry_delay_s)
            rs_name, rs_public_key = replicas[attempt % len(replicas)]
            session_key = SecretBox.generate_key()
            body = encode_retrieval_request(session_key, guid)
            request = rs_public_key.encrypt(body)
            try:
                sealed = await self._anonymized_call(
                    rs_name, RPC_RETRIEVE, request, span=span
                )
            except TransportError:
                continue
            try:
                ciphertext_bytes = decode_retrieval_response(session_key, sealed)
                break
            except (RetrievalError, DecryptionError):
                continue
        if ciphertext_bytes is None:
            self.stats.failed_fetches += 1
            obs.end_span(span, status="failed_fetch", attempts=attempt + 1)
            return
        step = obs.start_span("abe.decrypt", component=self.name, parent=span)
        try:
            with obs.attach(step):
                payload = open_delivery(
                    self.cpabe,
                    self.group,
                    self.credentials.cpabe_secret_key,
                    guid,
                    self.guid_bytes,
                    ciphertext_bytes,
                )
        except GuidMismatchError:
            self.stats.access_denied += 1
            obs.end_span(step)
            obs.end_span(span, status="guid_mismatch", attempts=attempt + 1)
            return
        except DecryptionError:
            self.stats.access_denied += 1
            obs.end_span(step, status="denied")
            obs.end_span(span, status="access_denied", attempts=attempt + 1)
            return
        obs.end_span(step)
        delivery = Delivery(
            publication_id=publication_id,
            guid=guid,
            payload=payload,
            delivered_at=self.clock(),
        )
        self.stats.deliveries.append(delivery)
        self._delivery_event.set()
        obs.end_span(
            obs.start_span(
                "deliver",
                component=self.name,
                parent=span,
                publication_id=publication_id,
                bytes=len(payload),
            )
        )
        obs.end_span(span, status="delivered", attempts=attempt + 1)
        if self.on_payload is not None:
            self.on_payload(delivery)

    async def wait_for_deliveries(self, count: int, timeout_s: float = 30.0) -> None:
        """Block until this subscriber has at least ``count`` deliveries."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            # clear-then-check: a delivery landing in between re-sets the
            # event, so the wait below returns immediately
            self._delivery_event.clear()
            if len(self.stats.deliveries) >= count:
                return
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TransportError(
                    f"{self.name}: only {len(self.stats.deliveries)}/{count} "
                    f"deliveries after {timeout_s}s"
                )
            try:
                await asyncio.wait_for(self._delivery_event.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    # -- transport helper -------------------------------------------------------

    async def _anonymized_call(self, dst: str, msg_type: str, request: bytes, span=None):
        headers = obs.inject({}, span)
        if self.use_anonymizer and self.directory.anonymizer_name:
            envelope = AnonEnvelope(dst=dst, inner_type=msg_type, inner_payload=request)
            return await self.endpoint.call(
                self.directory.anonymizer_name,
                RPC_ANON_FORWARD,
                envelope,
                headers=headers,
            )
        return await self.endpoint.call(dst, msg_type, request, headers=headers)

    async def close(self) -> None:
        await self.endpoint.close()
