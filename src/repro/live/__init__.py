"""repro.live: the P3S deployment as real networked services.

The rest of the repository reproduces P3S inside a discrete-event
simulator; this package runs the same protocol over actual asyncio TCP
sockets — length-prefixed binary frames (:mod:`repro.live.wire`), an
authenticated-encryption channel with an ARA-anchored handshake
(:mod:`repro.live.channel`), a request/response RPC layer mirroring the
simulator endpoint's API (:mod:`repro.live.rpc`), the four third parties
as services (:mod:`repro.live.services`), publisher/subscriber clients
(:mod:`repro.live.clients`), and deployment/scenario orchestration
(:mod:`repro.live.deployment`, :mod:`repro.live.scenario`).  Every
service also answers the operational telemetry RPCs — health, metrics
(JSON or OpenMetrics text), and a flight-recorder span drain — defined
in :mod:`repro.live.telemetry` and aggregated deployment-wide by
``repro live status`` / ``repro live top``.

Protocol logic is shared with the simulator via the substrate-free
engines in :mod:`repro.core` — both substrates deliver identical
plaintext sets for identical scenarios (``tests/live/test_parity.py``).
"""

from .channel import SecureChannel, ServerIdentity, ServiceKey, accept_channel, connect_channel
from .clients import LivePublisher, LiveSubscriber
from .deployment import LiveDeployment
from .rpc import AddressBook, LiveRpcEndpoint
from .scenario import (
    PublicationSpec,
    Scenario,
    SubscriberSpec,
    default_scenario,
    run_live,
    run_on_live,
    run_on_simulator,
)
from .services import (
    LiveAnonymizationService,
    LiveDisseminationServer,
    LivePBETokenServer,
    LiveRepositoryServer,
)
from .telemetry import TelemetryClient, install_telemetry
from .wire import decode_frame, decode_payload, encode_frame, encode_payload

__all__ = [
    "AddressBook",
    "LiveRpcEndpoint",
    "SecureChannel",
    "ServerIdentity",
    "ServiceKey",
    "accept_channel",
    "connect_channel",
    "LivePublisher",
    "LiveSubscriber",
    "LiveDeployment",
    "LiveAnonymizationService",
    "LiveDisseminationServer",
    "LivePBETokenServer",
    "LiveRepositoryServer",
    "Scenario",
    "SubscriberSpec",
    "PublicationSpec",
    "default_scenario",
    "run_on_simulator",
    "run_on_live",
    "run_live",
    "TelemetryClient",
    "install_telemetry",
    "encode_frame",
    "decode_frame",
    "encode_payload",
    "decode_payload",
]
