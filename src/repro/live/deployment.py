"""Stand up a full P3S deployment as real TCP services.

:class:`LiveDeployment` is the live counterpart of
:class:`repro.core.system.P3SSystem`: it wires the Fig. 1 topology — DS,
RS, PBE-TS, anonymization service, publishers, subscribers — but every
party is an asyncio TCP service (or client) on localhost instead of a
simulator process.  The ARA stays an offline trust root, exactly as in
the paper: it mints each service's channel identity
(:class:`repro.live.channel.ServerIdentity`), signs the service-key
directory, and registers clients by direct method call before any
network traffic flows.

Typical use::

    deployment = LiveDeployment()
    await deployment.start()
    alice = await deployment.add_subscriber("alice", {"org:acme"})
    await alice.subscribe(Interest({"attr00": "v01"}))
    pub = await deployment.add_publisher("pub")
    await pub.publish({...}, b"payload", policy="org:acme")
    await alice.wait_for_deliveries(1)
    await deployment.close()
"""

from __future__ import annotations

import time

from ..cluster.router import ClusterMap, shard_names
from ..core.ara import RegistrationAuthority
from ..core.config import P3SConfig
from ..core.pbe_ts import TokenIssuer
from ..crypto.group import PairingGroup
from ..pbe.hve import HVE
from .channel import ServerIdentity
from .clients import LivePublisher, LiveSubscriber
from .rpc import AddressBook, LiveRpcEndpoint
from .services import (
    LiveAnonymizationService,
    LiveDisseminationServer,
    LivePBETokenServer,
    LiveRepositoryServer,
)
from .telemetry import TelemetryClient

__all__ = ["LiveDeployment", "SERVICE_NAMES"]

DS_NAME = "ds"
RS_NAME = "rs"
PBE_TS_NAME = "pbe-ts"
ANON_NAME = "anon"
SERVICE_NAMES = (DS_NAME, RS_NAME, PBE_TS_NAME, ANON_NAME)


class LiveDeployment:
    """One fully-wired P3S deployment on real TCP sockets."""

    def __init__(self, config: P3SConfig | None = None):
        self.config = config or P3SConfig()
        self.group = PairingGroup(self.config.param_set)
        self.ara = RegistrationAuthority(self.group, self.config.schema)
        self.addresses = AddressBook()
        self.obs = self.config.obs
        if self.obs is not None:
            epoch = time.monotonic()
            self.obs.bind_clock(lambda: time.monotonic() - epoch)
            self.obs.install()
        # shard topology (repro.cluster): 1/1 keeps the classic names
        # and no cluster machinery at all
        self.ds_names = shard_names(DS_NAME, self.config.ds_shards)
        self.rs_names = shard_names(RS_NAME, self.config.rs_shards)
        replication = max(1, min(self.config.rs_replication, len(self.rs_names)))
        self.cluster: ClusterMap | None = None
        if len(self.ds_names) > 1 or len(self.rs_names) > 1 or replication > 1:
            self.cluster = ClusterMap(
                ds_names=list(self.ds_names),
                rs_names=list(self.rs_names),
                rs_replication=replication,
            )
        self.ds_shards: dict[str, LiveDisseminationServer] = {}
        self.rs_shards: dict[str, LiveRepositoryServer] = {}
        self.ds: LiveDisseminationServer | None = None
        self.rs: LiveRepositoryServer | None = None
        self.pbe_ts: LivePBETokenServer | None = None
        self.anonymizer: LiveAnonymizationService | None = None
        self.publishers: dict[str, LivePublisher] = {}
        self.subscribers: dict[str, LiveSubscriber] = {}
        self._started = False

    @property
    def service_names(self) -> tuple[str, ...]:
        """Every third party in this deployment (telemetry poll set)."""
        return (*self.ds_names, *self.rs_names, PBE_TS_NAME, ANON_NAME)

    # -- service bring-up -------------------------------------------------------

    def _service_endpoint(self, name: str) -> LiveRpcEndpoint:
        identity = ServerIdentity.issue(self.ara, self.group, name)
        return LiveRpcEndpoint(
            name,
            self.addresses,
            ara_verify_key=self.ara.directory.ara_verify_key,
            identity=identity,
        )

    def _client_endpoint(self, name: str) -> LiveRpcEndpoint:
        return LiveRpcEndpoint(
            name, self.addresses, ara_verify_key=self.ara.directory.ara_verify_key
        )

    async def start(self, host: str = "127.0.0.1") -> None:
        """Bind every third party to an ephemeral port and publish the
        directory (addresses + ARA-signed service keys) — the live
        rendition of §4.3's registration hand-out."""
        config = self.config
        for rs_name in self.rs_names:
            self.rs_shards[rs_name] = LiveRepositoryServer(
                self._service_endpoint(rs_name),
                self.group,
                t_g=config.t_g,
                gc_interval_s=config.rs_gc_interval_s,
            )
        self.rs = self.rs_shards[self.rs_names[0]]
        for ds_name in self.ds_names:
            self.ds_shards[ds_name] = LiveDisseminationServer(
                self._service_endpoint(ds_name),
                self.rs_names[0],
                metadata_topic=config.metadata_topic,
                group=self.group,
                match_workers=config.match_workers,
                cluster=self.cluster,
            )
        self.ds = self.ds_shards[self.ds_names[0]]
        hve = HVE(self.group)
        master_key, verify_key = self.ara.provision_pbe_ts()
        self.pbe_ts = LivePBETokenServer(
            self._service_endpoint(PBE_TS_NAME),
            TokenIssuer(
                hve,
                master_key,
                config.schema,
                verify_key,
                subscription_policy=config.subscription_policy,
            ),
            self.group,
        )
        self.anonymizer = LiveAnonymizationService(self._service_endpoint(ANON_NAME))

        for service in (
            *self.rs_shards.values(),
            *self.ds_shards.values(),
            self.pbe_ts,
            self.anonymizer,
        ):
            bound_host, bound_port = await service.start(host)
            self.addresses.register(
                service.name, bound_host, bound_port, service.endpoint.identity.service_key
            )

        self.ara.install_service("ds", self.ds_names[0])
        self.ara.install_service("rs", self.rs_names[0], self.rs.pke.public)
        self.ara.install_service("pbe_ts", PBE_TS_NAME, self.pbe_ts.pke.public)
        self.ara.install_service("anonymizer", ANON_NAME)
        if self.cluster is not None:
            for rs_name, rs in self.rs_shards.items():
                self.cluster.rs_public_keys[rs_name] = rs.pke.public
            # by reference: every credential embeds this directory, so
            # all clients route through the same live ClusterMap
            self.ara.directory.cluster = self.cluster
        self._started = True

    # -- participants -----------------------------------------------------------

    async def add_publisher(self, name: str) -> LivePublisher:
        credentials = self.ara.register_publisher(name)
        publisher = LivePublisher(
            credentials,
            self._client_endpoint(name),
            self.group,
            guid_bytes=self.config.guid_bytes,
        )
        await publisher.connect()
        self.publishers[name] = publisher
        return publisher

    async def add_subscriber(
        self,
        name: str,
        attributes: set[str],
        on_payload=None,
        delegate_tokens: bool | None = None,
        retrieval_retries: int = 10,
        retry_delay_s: float = 0.05,
    ) -> LiveSubscriber:
        if delegate_tokens is None:
            delegate_tokens = self.config.delegated_matching
        credentials = self.ara.register_subscriber(name, attributes)
        subscriber = LiveSubscriber(
            credentials,
            self._client_endpoint(name),
            self.group,
            use_anonymizer=self.config.use_anonymizer,
            guid_bytes=self.config.guid_bytes,
            metadata_topic=self.config.metadata_topic,
            on_payload=on_payload,
            retrieval_retries=retrieval_retries,
            retry_delay_s=retry_delay_s,
            delegate_tokens=delegate_tokens,
        )
        await subscriber.connect()
        self.subscribers[name] = subscriber
        return subscriber

    # -- telemetry --------------------------------------------------------------

    def telemetry_client(self, name: str = "telemetry") -> TelemetryClient:
        """A poller over every third party's admin RPCs (health, metrics,
        spans) — the engine under ``repro live status`` and ``live top``."""
        return TelemetryClient(self._client_endpoint(name), self.service_names)

    async def scrape(self, aggregator=None):
        """One-shot telemetry sweep of all four services.

        Opens a short-lived client endpoint, polls, and closes it; pass an
        existing :class:`~repro.obs.aggregate.TelemetryAggregator` to keep
        state across sweeps (``live top`` does, for rates).
        """
        client = self.telemetry_client()
        try:
            return await client.scrape(aggregator)
        finally:
            await client.close()

    # -- shutdown ---------------------------------------------------------------

    async def close(self) -> None:
        """Graceful teardown: clients first, then services."""
        for publisher in self.publishers.values():
            await publisher.close()
        for subscriber in self.subscribers.values():
            await subscriber.close()
        for service in (
            self.anonymizer,
            self.pbe_ts,
            *self.ds_shards.values(),
            *self.rs_shards.values(),
        ):
            if service is not None:
                await service.close()
        self.publishers.clear()
        self.subscribers.clear()
        self.ds_shards.clear()
        self.rs_shards.clear()
        self._started = False
