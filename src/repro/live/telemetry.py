"""The operational telemetry plane for live P3S deployments.

Every live service answers three admin RPCs over the same
:class:`~repro.live.rpc.LiveRpcEndpoint` substrate (and therefore the
same AEAD channels) as application traffic:

``KIND_HEALTH``
    Liveness + readiness: the trust root is loaded, the listener is
    bound, no dial-backoff loop is active, and service-specific warmth
    checks pass (DS match pool forked, RS garbage collector running).
``KIND_METRICS``
    A point-in-time snapshot of the service's metric series — the
    endpoint's transport gauges, service protocol counters, and the
    slice of the process-global observability registry attributed to
    this service's component — as structured JSON, or as
    Prometheus/OpenMetrics text when the request payload says
    ``"openmetrics"``.
``KIND_SPANS``
    A destructive drain of the flight recorder
    (:mod:`repro.obs.ring`): finished spans leave the process exactly
    once, open spans wait for the next poll, and the cumulative
    ``dropped_spans`` count rides along so truncation is never silent.
``KIND_PROFILE``
    A snapshot of the process's profile sampler
    (:mod:`repro.obs.prof`) as a profile dict — cumulative weighted
    stacks tagged with an ``origin`` token unique to the sampler, so
    the aggregator can replace rather than sum when four services of a
    single-process deployment all hand over the same profile.  Empty
    when no profiler is attached.

:class:`TelemetryClient` is the polling side: one client endpoint that
scrapes any set of services into a
:class:`~repro.obs.aggregate.TelemetryAggregator` — the engine under
``repro live status`` and ``repro live top``.

Telemetry responses are operational metadata (counts, booleans, span
timings) — never protocol ciphertext, tokens, or key material — so
exposing them over the authenticated channels adds no adversary
knowledge beyond what §6.1 already grants an honest-but-curious service
operator about their own process.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterable

from ..core.messages import KIND_HEALTH, KIND_METRICS, KIND_PROFILE, KIND_SPANS
from ..obs import profile
from ..obs.aggregate import TelemetryAggregator
from ..obs.exposition import to_openmetrics
from ..obs.metrics import MetricsRegistry
from .rpc import LiveRpcEndpoint

__all__ = [
    "GAUGE_METRICS",
    "install_telemetry",
    "service_health_snapshot",
    "service_metrics_snapshot",
    "drain_spans_snapshot",
    "profile_snapshot",
    "snapshot_registry",
    "TelemetryClient",
]

# Counter-shaped series that are point-in-time values, not monotone
# totals — typed `gauge` in the OpenMetrics exposition.
GAUGE_METRICS = frozenset(
    {
        "live.rpc.open_connections",
        "live.rpc.in_flight_calls",
        "live.rpc.pending_high_water",
        "ds.subscribers",
        "ds.registered_tokens",
        "rs.stored_items",
        "obs.slow_spans",
        "obs.sampler.keep_rate",
        "store.recovery_s",
    }
)

# Bound per-series histogram samples in one snapshot; full count/sum
# still travel, only raw values are windowed.
MAX_HISTOGRAM_VALUES = 1024


def _endpoint_samples(endpoint: LiveRpcEndpoint) -> list[dict[str, Any]]:
    """The endpoint's transport gauges as counter-series entries."""
    stats = endpoint.stats()
    samples: list[dict[str, Any]] = [
        {"name": "live.rpc.open_connections", "labels": {}, "value": stats["open_connections"]},
        {"name": "live.rpc.in_flight_calls", "labels": {}, "value": stats["in_flight_calls"]},
        {"name": "live.rpc.pending_high_water", "labels": {}, "value": stats["pending_high_water"]},
        {"name": "live.rpc.dials", "labels": {}, "value": stats["dials"]},
        {"name": "live.rpc.reconnects", "labels": {}, "value": stats["reconnects"]},
    ]
    for direction, per_peer in (
        ("tx", stats["tx_bytes"]),
        ("rx", stats["rx_bytes"]),
    ):
        for peer, value in sorted(per_peer.items()):
            samples.append(
                {"name": f"live.net.{direction}_bytes", "labels": {"peer": peer}, "value": value}
            )
    for direction, per_peer in (
        ("tx", stats["tx_frames"]),
        ("rx", stats["rx_frames"]),
    ):
        for peer, value in sorted(per_peer.items()):
            samples.append(
                {"name": f"live.net.{direction}_frames", "labels": {"peer": peer}, "value": value}
            )
    return samples


def service_health_snapshot(service) -> dict[str, Any]:
    """Liveness/readiness document for one live service.

    ``alive`` means "the process answered this RPC" (trivially true in
    the response); ``ready`` is the conjunction of every check —
    substrate checks here plus whatever the service adds via
    ``health_checks()``.
    """
    endpoint = service.endpoint
    server = getattr(endpoint, "_server", None)
    checks: dict[str, bool] = {
        "identity_loaded": endpoint.identity is not None,
        "trust_root_loaded": endpoint.ara_verify_key is not None,
        "listening": server is not None and server.is_serving(),
        "dial_backoff_quiet": not endpoint.dial_backoff_active,
    }
    extra = getattr(service, "health_checks", None)
    if callable(extra):
        checks.update(extra())
    return {
        "service": endpoint.name,
        "alive": True,
        "ready": all(checks.values()),
        "checks": checks,
        "time": time.time(),
    }


def service_metrics_snapshot(service) -> dict[str, Any]:
    """Point-in-time metric series for one live service.

    Three sources merge: the endpoint's transport gauges (always on),
    the service's own protocol counters (``extra_metrics()``), and —
    when an observability instance is installed — the slice of the
    process-global registry whose ``component`` label is this service,
    plus the flight recorder's drop/slow accounting.  The component
    filter is what keeps a single-process deployment's per-service
    scrapes disjoint: summing them equals the global registry's totals
    for those components, with no double counting.
    """
    endpoint = service.endpoint
    name = endpoint.name
    counters = _endpoint_samples(endpoint)
    extra = getattr(service, "extra_metrics", None)
    if callable(extra):
        counters.extend(extra())
    histograms: list[dict[str, Any]] = []
    obs = profile.active()
    if obs is not None:
        mine = lambda _n, labels: labels.get("component") == name  # noqa: E731
        counters.extend(obs.metrics.counter_series(where=mine))
        histograms.extend(
            obs.metrics.histogram_series(where=mine, max_values=MAX_HISTOGRAM_VALUES)
        )
        counters.append(
            {"name": "obs.dropped_spans", "labels": {}, "value": obs.tracer.dropped_spans}
        )
        counters.append(
            {"name": "obs.slow_spans", "labels": {}, "value": len(obs.tracer.slow_spans)}
        )
        sampler = obs.sampler
        if sampler is not None:
            for counter, value in sampler.counters().items():
                counters.append(
                    {"name": f"obs.sampler.{counter}", "labels": {}, "value": value}
                )
            counters.append(
                {"name": "obs.sampler.keep_rate", "labels": {}, "value": sampler.keep_rate}
            )
    return {
        "service": name,
        "time": time.time(),
        "counters": counters,
        "histograms": histograms,
    }


def snapshot_registry(snapshot: dict[str, Any]) -> MetricsRegistry:
    """Rebuild one snapshot as a standalone registry (for exposition)."""
    registry = MetricsRegistry()
    for entry in snapshot.get("counters", []):
        registry.inc(entry["name"], entry.get("value", 0), **entry.get("labels", {}))
    for entry in snapshot.get("histograms", []):
        for value in entry.get("values", []):
            registry.observe(entry["name"], value, **entry.get("labels", {}))
    return registry


def drain_spans_snapshot(service) -> dict[str, Any]:
    """Drain the process flight recorder: each finished span leaves once.

    In a single-process deployment all services share one recorder, so
    whichever service a poller asks first hands over everything —
    the aggregator deduplicates by span identity, and nothing is lost
    or duplicated either way.
    """
    obs = profile.active()
    if obs is None:
        return {"service": service.endpoint.name, "spans": [], "dropped_spans": 0, "slow_spans": []}
    drained = obs.tracer.drain_finished()
    return {
        "service": service.endpoint.name,
        "spans": [span.to_dict() for span in drained],
        "dropped_spans": obs.tracer.dropped_spans,
        "slow_spans": [span.to_dict() for span in obs.tracer.slow_spans],
    }


def profile_snapshot(service) -> dict[str, Any]:
    """The process profiler's cumulative profile, as a wire dict.

    Non-destructive (unlike the span drain): the profile is cumulative
    and carries its sampler's ``origin`` token, so the aggregator
    replaces the previous snapshot from the same origin instead of
    summing — repeated polls, or four services sharing one process-wide
    sampler, never inflate the weights.
    """
    profiler = profile.active_profiler()
    if profiler is None:
        return {"service": service.endpoint.name, "profile": None}
    return {"service": service.endpoint.name, "profile": profiler.profile().to_dict()}


def install_telemetry(service) -> None:
    """Register the four telemetry handlers on a service's endpoint."""
    endpoint = service.endpoint

    def handle_health(src: str, message) -> tuple[str, int]:
        body = json.dumps(service_health_snapshot(service), default=str)
        return body, len(body)

    def handle_metrics(src: str, message) -> tuple[str, int]:
        snapshot = service_metrics_snapshot(service)
        if message.payload == "openmetrics":
            body = to_openmetrics(
                snapshot_registry(snapshot),
                gauge_names=GAUGE_METRICS,
                extra_labels={"service": snapshot["service"]},
            )
        else:
            body = json.dumps(snapshot, default=str)
        return body, len(body)

    def handle_spans(src: str, message) -> tuple[str, int]:
        body = json.dumps(drain_spans_snapshot(service), default=str)
        return body, len(body)

    def handle_profile(src: str, message) -> tuple[str, int]:
        body = json.dumps(profile_snapshot(service), default=str)
        return body, len(body)

    endpoint.serve(KIND_HEALTH, handle_health)
    endpoint.serve(KIND_METRICS, handle_metrics)
    endpoint.serve(KIND_SPANS, handle_spans)
    endpoint.serve(KIND_PROFILE, handle_profile)


class TelemetryClient:
    """Scrape health/metrics/spans from a set of live services."""

    def __init__(
        self,
        endpoint: LiveRpcEndpoint,
        services: Iterable[str],
        call_timeout_s: float = 10.0,
    ):
        self.endpoint = endpoint
        self.services = list(services)
        self.call_timeout_s = call_timeout_s

    async def health(self, service: str) -> dict[str, Any]:
        body = await self.endpoint.call(
            service, KIND_HEALTH, None, timeout_s=self.call_timeout_s
        )
        return json.loads(body)

    async def metrics(self, service: str) -> dict[str, Any]:
        body = await self.endpoint.call(
            service, KIND_METRICS, "json", timeout_s=self.call_timeout_s
        )
        return json.loads(body)

    async def metrics_text(self, service: str) -> str:
        """The service's own Prometheus/OpenMetrics exposition."""
        return await self.endpoint.call(
            service, KIND_METRICS, "openmetrics", timeout_s=self.call_timeout_s
        )

    async def spans(self, service: str) -> dict[str, Any]:
        body = await self.endpoint.call(
            service, KIND_SPANS, None, timeout_s=self.call_timeout_s
        )
        return json.loads(body)

    async def profile(self, service: str) -> dict[str, Any]:
        body = await self.endpoint.call(
            service, KIND_PROFILE, None, timeout_s=self.call_timeout_s
        )
        return json.loads(body)

    async def scrape(
        self, aggregator: TelemetryAggregator | None = None
    ) -> TelemetryAggregator:
        """Poll every service (health, metrics, spans) into an aggregator.

        A service that cannot be reached is recorded dead
        (``alive=False``) rather than failing the scrape — ``status``
        must report a down deployment, not crash on one.
        """
        from ..errors import TransportError

        aggregator = aggregator or TelemetryAggregator()
        for service in self.services:
            try:
                aggregator.update_health(service, await self.health(service))
                aggregator.update_metrics(service, await self.metrics(service))
                drained = await self.spans(service)
                aggregator.add_spans(
                    service, drained.get("spans", []), drained.get("dropped_spans", 0)
                )
                profiled = await self.profile(service)
                if profiled.get("profile") is not None:
                    aggregator.add_profile(service, profiled["profile"])
            except TransportError:
                aggregator.update_health(
                    service,
                    {"service": service, "alive": False, "ready": False, "checks": {}},
                )
        return aggregator

    async def close(self) -> None:
        await self.endpoint.close()
