"""Request/response RPC over live secure channels.

:class:`LiveRpcEndpoint` is the asyncio implementation of the
substrate contract in :mod:`repro.net.transport` — the same
``serve`` / ``call`` / ``cast`` surface as the simulator's
:class:`repro.net.rpc.RpcEndpoint`, with the same frame-header
conventions (``rpc`` / ``corr`` / ``reply_to``), so P3S protocol logic
reads identically on both substrates.

Connection management:

* **dialing** — outbound connections are established on demand from the
  :class:`AddressBook`, with bounded exponential-backoff retries
  (``backoff_base * 2^attempt``, capped), then kept open and multiplexed;
* **serving** — services call :meth:`start_server`; every accepted
  connection is handshaken and registered under the client's name, so a
  service can *push* frames to connected clients (the DS delivering
  metadata broadcasts) over the same connection the client opened;
* **timeouts** — every ``call`` has a deadline
  (:class:`~repro.errors.TransportError` on expiry); handshakes and
  dials have their own;
* **graceful shutdown** — :meth:`close` stops the listener, closes every
  channel, cancels reader tasks, and fails pending calls instead of
  leaving them hanging;
* **gauges** — every endpoint keeps always-on transport accounting for
  the telemetry plane (:meth:`stats`): open connections, in-flight
  calls, the pending-call high-water mark, dial/reconnect counters, and
  per-peer tx/rx byte and frame totals measured at the AEAD record
  layer (seal overhead included).  A peer currently stuck in a dial
  backoff loop flips :attr:`dial_backoff_active`, which health-readiness
  reports as not-ready.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable

from ..crypto.signing import VerifyKey
from ..errors import MessageLossError, NetworkError, TransportError
from ..net.transport import TransportMessage
from ..obs import profile as obs
from .channel import SecureChannel, ServerIdentity, ServiceKey, accept_channel, connect_channel
from .wire import decode_frame, encode_frame

__all__ = ["AddressBook", "LiveRpcEndpoint"]


@dataclass
class _Entry:
    host: str
    port: int
    service_key: ServiceKey


class AddressBook:
    """Name → (address, signed service key): the live service directory.

    The ARA distributes exactly this at registration time ("contact
    information for the P3S services ... and their public key
    certificates", §4.3).
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}

    def register(self, name: str, host: str, port: int, service_key: ServiceKey) -> None:
        self._entries[name] = _Entry(host, port, service_key)

    def resolve(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise TransportError(f"no address for {name!r} in the service directory")
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)

    def to_dict(self) -> dict[str, tuple[str, int]]:
        return {name: (e.host, e.port) for name, e in self._entries.items()}


class LiveRpcEndpoint:
    """RPC + one-way messaging endpoint for one live P3S party."""

    _correlation = itertools.count(1)

    def __init__(
        self,
        name: str,
        addresses: AddressBook,
        ara_verify_key: VerifyKey | None = None,
        identity: ServerIdentity | None = None,
        call_timeout_s: float = 15.0,
        connect_timeout_s: float = 5.0,
        reconnect_attempts: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
    ):
        self._name = name
        self.addresses = addresses
        self.ara_verify_key = ara_verify_key
        self.identity = identity
        self.call_timeout_s = call_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._handlers: dict[str, Callable] = {}
        self._channels: dict[str, SecureChannel] = {}
        self._readers: dict[str, asyncio.Task] = {}
        self._dial_locks: dict[str, asyncio.Lock] = {}
        self._pending: dict[int, asyncio.Future] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        # telemetry gauges/counters — plain attribute bumps, always on
        self.tx_bytes: dict[str, int] = defaultdict(int)
        self.rx_bytes: dict[str, int] = defaultdict(int)
        self.tx_frames: dict[str, int] = defaultdict(int)
        self.rx_frames: dict[str, int] = defaultdict(int)
        self.dials = 0
        self.reconnects = 0
        self.pending_high_water = 0
        self._backoff_peers: set[str] = set()
        # Chaos seam (repro.chaos.proxy.duplicate_dispatch): when set,
        # called once per decoded inbound frame; the returned count is
        # how many times the frame is dispatched — >1 injects
        # application-level duplicate records *behind* the AEAD record
        # layer, whose strict sequence numbers make on-the-wire
        # duplication impossible by design.  0 suppresses the frame.
        self.dispatch_fanout: Callable[[TransportMessage], int] | None = None

    @property
    def name(self) -> str:
        return self._name

    # -- telemetry gauges --------------------------------------------------------

    @property
    def open_connections(self) -> int:
        """Live channels currently usable (dialed or accepted)."""
        return sum(1 for channel in self._channels.values() if not channel.closed)

    @property
    def in_flight_calls(self) -> int:
        """Requests sent and still awaiting their response."""
        return len(self._pending)

    @property
    def dial_backoff_active(self) -> bool:
        """True while any peer is inside the dial-retry backoff loop."""
        return bool(self._backoff_peers)

    def stats(self) -> dict[str, Any]:
        """Point-in-time transport accounting for the telemetry plane."""
        return {
            "open_connections": self.open_connections,
            "in_flight_calls": self.in_flight_calls,
            "pending_high_water": self.pending_high_water,
            "dials": self.dials,
            "reconnects": self.reconnects,
            "dial_backoff_active": self.dial_backoff_active,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "tx_bytes": dict(self.tx_bytes),
            "rx_bytes": dict(self.rx_bytes),
            "tx_frames": dict(self.tx_frames),
            "rx_frames": dict(self.rx_frames),
        }

    # -- server side -----------------------------------------------------------

    def serve(self, msg_type: str, handler: Callable) -> None:
        """Register a handler; may be sync or ``async def``.

        Request handlers return ``(payload, size_bytes)`` — same contract
        as the simulator substrate; one-way handlers return ``None``.
        """
        if msg_type in self._handlers:
            raise NetworkError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen for live connections; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (tests and single-host demos).
        Requires an :class:`ServerIdentity` — only services listen.
        """
        if self.identity is None:
            raise TransportError(f"{self._name} has no server identity; cannot listen")
        self._server = await asyncio.start_server(self._on_connection, host, port)
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        return sock_host, sock_port

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            channel = await accept_channel(reader, writer, self.identity)
        except NetworkError:
            return  # failed handshakes never reach the application
        self._adopt(channel.peer_name, channel)

    # -- connection management -------------------------------------------------

    def _adopt(self, peer: str, channel: SecureChannel) -> None:
        """Track a live channel and start its reader loop."""
        old = self._readers.pop(peer, None)
        if old is not None:
            old.cancel()
        self._channels[peer] = channel
        task = asyncio.ensure_future(self._reader_loop(peer, channel))
        self._readers[peer] = task

    async def _ensure_channel(self, dst: str) -> SecureChannel:
        channel = self._channels.get(dst)
        if channel is not None and not channel.closed:
            return channel
        lock = self._dial_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            channel = self._channels.get(dst)
            if channel is not None and not channel.closed:
                return channel
            return await self._dial(dst)

    async def _dial(self, dst: str) -> SecureChannel:
        """Connect to ``dst`` with bounded exponential backoff.

        While retrying, ``dst`` sits in the backoff set — health
        readiness reports the endpoint not-ready for the duration, so an
        operator sees a flapping upstream instead of silent retries.
        """
        entry = self.addresses.resolve(dst)
        last_error: Exception | None = None
        try:
            for attempt in range(self.reconnect_attempts):
                if attempt:
                    self._backoff_peers.add(dst)
                    self.reconnects += 1
                    delay = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
                    await asyncio.sleep(delay)
                try:
                    channel = await connect_channel(
                        entry.host,
                        entry.port,
                        entry.service_key,
                        self.ara_verify_key,
                        self._name,
                        timeout=self.connect_timeout_s,
                    )
                    self._adopt(dst, channel)
                    self.dials += 1
                    obs.record_op("live.dial")
                    return channel
                except TransportError as exc:
                    last_error = exc
                    obs.record_op("live.dial_retry")
        finally:
            self._backoff_peers.discard(dst)
        raise TransportError(
            f"{self._name}: could not reach {dst} after "
            f"{self.reconnect_attempts} attempts: {last_error}"
        )

    # -- client side -----------------------------------------------------------

    async def call(
        self,
        dst: str,
        msg_type: str,
        payload: Any,
        size_bytes: int | None = None,
        headers: dict[str, Any] | None = None,
        timeout_s: float | None = None,
    ) -> Any:
        """Send a request and await the response payload.

        ``size_bytes`` exists for signature parity with the simulator
        endpoint; the live wire measures itself.
        """
        correlation = next(self._correlation)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[correlation] = future
        self.pending_high_water = max(self.pending_high_water, len(self._pending))
        frame_headers = {
            **(headers or {}),
            "rpc": "request",
            "corr": correlation,
            "reply_to": self._name,
        }
        try:
            await self._send_frame(dst, msg_type, payload, frame_headers)
            return await asyncio.wait_for(
                future, timeout_s if timeout_s is not None else self.call_timeout_s
            )
        except asyncio.TimeoutError as exc:
            raise TransportError(
                f"{self._name}: call {msg_type} to {dst} timed out"
            ) from exc
        finally:
            self._pending.pop(correlation, None)

    async def cast(
        self,
        dst: str,
        msg_type: str,
        payload: Any,
        size_bytes: int | None = None,
        headers: dict[str, Any] | None = None,
    ) -> None:
        """One-way frame (no response expected)."""
        await self._send_frame(dst, msg_type, payload, dict(headers or {}))

    async def _send_frame(
        self, dst: str, msg_type: str, payload: Any, headers: dict[str, Any]
    ) -> None:
        if self._closed:
            raise TransportError(f"endpoint {self._name} is closed")
        channel = await self._ensure_channel(dst)
        record = encode_frame(
            TransportMessage(msg_type=msg_type, payload=payload, src=self._name, headers=headers)
        )
        wire_len = await channel.send_record(record)
        self.bytes_sent += len(record)
        self.tx_bytes[dst] += wire_len
        self.tx_frames[dst] += 1
        obs.observe("net.live.bytes", len(record), direction="sent", endpoint=self._name)

    # -- dispatch ----------------------------------------------------------------

    async def _reader_loop(self, peer: str, channel: SecureChannel) -> None:
        try:
            while True:
                wire_before = channel.bytes_received
                record = await channel.recv_record()
                self.bytes_received += len(record)
                self.rx_bytes[peer] += channel.bytes_received - wire_before
                self.rx_frames[peer] += 1
                obs.observe(
                    "net.live.bytes", len(record), direction="received", endpoint=self._name
                )
                message = decode_frame(record)
                message.src = channel.peer_name  # trust the handshake, not the frame
                copies = 1 if self.dispatch_fanout is None else self.dispatch_fanout(message)
                for _ in range(copies):
                    self._dispatch(message)
        except MessageLossError:
            obs.record_op("live.record_gap")
            await channel.close()
        except (TransportError, asyncio.CancelledError):
            pass
        finally:
            if self._channels.get(peer) is channel:
                del self._channels[peer]
            self._fail_pending_if_unreachable(peer)

    def _fail_pending_if_unreachable(self, peer: str) -> None:
        # calls are correlated, not per-channel; only fail them when the
        # endpoint is shutting down (reconnect may still serve retries)
        if not self._closed:
            return
        for future in self._pending.values():
            if not future.done():
                future.set_exception(TransportError(f"endpoint {self._name} closed"))

    def _dispatch(self, message: TransportMessage) -> None:
        kind = message.headers.get("rpc")
        if kind == "response":
            correlation = message.headers.get("corr")
            future = self._pending.pop(correlation, None)
            if future is not None and not future.done():
                future.set_result(message.payload)
            return
        if kind == "request":
            self._spawn(self._handle_request(message))
            return
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            return  # unrouted one-way frame; drop (same as the simulator)
        result = handler(message.src, message)
        if asyncio.iscoroutine(result):
            self._spawn(result)

    async def _handle_request(self, message: TransportMessage) -> None:
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            return  # unknown RPC; P3S services ignore unroutable requests
        result = handler(message.src, message)
        if asyncio.iscoroutine(result):
            result = await result
        payload, _size = result
        reply_to = message.headers.get("reply_to", message.src)
        await self._send_frame(
            reply_to,
            message.msg_type + ":reply",
            payload,
            {"rpc": "response", "corr": message.headers.get("corr")},
        )

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)

    # -- shutdown ------------------------------------------------------------------

    async def close(self) -> None:
        """Graceful shutdown: listener, channels, readers, pending calls."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._handler_tasks:
            task.cancel()
        for task in self._readers.values():
            task.cancel()
        for channel in list(self._channels.values()):
            await channel.close()
        self._channels.clear()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(TransportError(f"endpoint {self._name} closed"))
        self._pending.clear()
        await asyncio.sleep(0)  # let cancellations propagate
