"""The P3S third parties as real asyncio TCP services.

Each class here is the live-substrate counterpart of a simulator service
in :mod:`repro.core` — same protocol, same engines, different event loop:

================================  =======================================
simulator (:mod:`repro.core`)     live (this module)
================================  =======================================
:class:`~repro.core.ds.DisseminationServer`    :class:`LiveDisseminationServer`
:class:`~repro.core.rs.RepositoryServer`       :class:`LiveRepositoryServer`
:class:`~repro.core.pbe_ts.PBETokenServer`     :class:`LivePBETokenServer`
:class:`~repro.core.anonymizer.AnonymizationService`  :class:`LiveAnonymizationService`
================================  =======================================

Protocol logic is **shared, not reimplemented**: the RS runs the same
:class:`repro.core.rs.RepositoryStore`, the PBE-TS the same
:class:`repro.core.pbe_ts.TokenIssuer`, the DS the same fan-out /
delegated-matching rules over the same frame kinds.  What differs is
purely the substrate — asyncio tasks instead of simulator processes, the
wall clock instead of ``sim.now``, and real sockets instead of modeled
links — which is why live deliveries are byte-identical to simulated
ones (``tests/live/test_parity.py``).
"""

from __future__ import annotations

import asyncio
import time
from collections import defaultdict
from typing import Callable

from ..core.messages import (
    KIND_METADATA,
    KIND_PAYLOAD,
    KIND_TOKEN_REG,
    KIND_TOKEN_UNREG,
    RPC_ANON_FORWARD,
    RPC_RETRIEVE,
    RPC_STORE,
    RPC_TOKEN_REQUEST,
    AnonEnvelope,
    PayloadSubmission,
    wire_size_of,
)
from ..core.pbe_ts import _ERR, _OK, TokenIssuer
from ..core.rs import RepositoryStore, decode_retrieval_request
from ..crypto.pke import PKEKeyPair
from ..crypto.symmetric import SecretBox
from ..errors import CertificateError, RetrievalError, SchemaError, TokenRequestError, TransportError
from ..mq import messages as frames
from ..mq.messages import JmsFrame
from ..obs import profile as obs
from ..par import MatchPool
from ..store import MemoryEngine, StorageEngine
from ..store.codec import (
    NS_SUBS,
    NS_TOKENS,
    decode_sub_key,
    decode_token,
    encode_token,
    sub_key,
    token_key,
)
from .rpc import LiveRpcEndpoint
from .telemetry import install_telemetry

__all__ = [
    "LiveDisseminationServer",
    "LiveRepositoryServer",
    "LivePBETokenServer",
    "LiveAnonymizationService",
]


def _store_samples(engine: StorageEngine, recovered: int) -> list[dict]:
    """Storage-engine counters, shared by the RS and DS metric snapshots."""
    status = engine.status()
    return [
        {"name": "store.backend_durable", "labels": {"backend": engine.backend},
         "value": int(engine.durable)},
        {"name": "store.last_committed_lsn", "labels": {},
         "value": status.get("last_committed_lsn", 0)},
        {"name": "store.live_records", "labels": {},
         "value": status.get("live_records", 0)},
        {"name": "store.tombstones", "labels": {},
         "value": status.get("tombstones", 0)},
        {"name": "store.compactions", "labels": {},
         "value": status.get("compactions", 0)},
        {"name": "store.recovered", "labels": {}, "value": recovered},
        {"name": "store.recovery_s", "labels": {},
         "value": status.get("recovery", {}).get("duration_s", 0.0)},
    ]


class _LiveService:
    """Shared shell: one endpoint, one listener, optional background tasks."""

    def __init__(self, endpoint: LiveRpcEndpoint):
        self.endpoint = endpoint
        self._tasks: list[asyncio.Task] = []
        install_telemetry(self)

    @property
    def name(self) -> str:
        return self.endpoint.name

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        return await self.endpoint.start_server(host, port)

    def _background(self, coro) -> None:
        self._tasks.append(asyncio.ensure_future(coro))

    def health_checks(self) -> dict[str, bool]:
        """Service-specific readiness checks; substrate checks (listener,
        trust root, dial backoff) live in :mod:`repro.live.telemetry`."""
        return {"background_tasks_alive": all(not t.done() for t in self._tasks)}

    def extra_metrics(self) -> list[dict]:
        """Service-specific counter samples for the metrics snapshot."""
        return []

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        await self.endpoint.close()


class LiveDisseminationServer(_LiveService):
    """The DS over TCP: topic broker + P3S publication handling.

    Clients reach the DS over their own live channels; delivery frames are
    pushed back over the same connection the subscriber opened (exactly
    the "TLS tunnels" the paper's broker keeps to its clients).
    """

    def __init__(
        self,
        endpoint: LiveRpcEndpoint,
        rs_name: str,
        metadata_topic: str = "p3s.metadata",
        group=None,
        match_workers: int | None = None,
        store: StorageEngine | None = None,
        cluster=None,
    ):
        super().__init__(endpoint)
        self.rs_name = rs_name
        # repro.cluster.ClusterMap (or None): payloads go to the GUID's
        # rs_replication ring successors instead of the single rs_name
        self.cluster = cluster
        self.metadata_topic = metadata_topic
        self.group = group
        self.match_workers = match_workers
        self.subscriptions: dict[str, list[str]] = defaultdict(list)
        self.connected_clients: set[str] = set()
        self.registered_tokens: list[tuple[str, bytes]] = []
        self.store = store if store is not None else MemoryEngine()
        self._match_pool: MatchPool | None = None
        self.recovered_registrations = 0
        if self.store.durable:
            self.recovered_registrations = self._recover_registrations()
            if self.registered_tokens and self.group is not None:
                # same rule as _register_token: recovered tokens mean the
                # DS is already committed to delegated matching, and
                # readiness (`match_pool_warm`) must not wait for the
                # first publication to lazily fork the pool — a
                # readiness-gated deployment would never send one
                self.match_pool
        self._message_ids = iter(range(1, 1 << 62))
        self.published_count = 0
        self.delivered_count = 0
        self.acked_count = 0
        # HBC-observable state, same shape as the simulator DS (§6.1)
        self.publications_by_publisher: dict[str, int] = defaultdict(int)
        self.observed_sizes: list[tuple[str, int]] = []
        endpoint.serve(frames.CONNECT, self._on_connect)
        endpoint.serve(frames.SUBSCRIBE, self._on_subscribe)
        endpoint.serve(frames.UNSUBSCRIBE, self._on_unsubscribe)
        endpoint.serve(frames.PUBLISH, self._on_publish)
        endpoint.serve(frames.ACK, self._on_ack)

    # -- JMS surface ----------------------------------------------------------

    def _on_connect(self, src: str, message) -> None:
        self.connected_clients.add(src)

    def _on_subscribe(self, src: str, message) -> None:
        topic = message.payload.topic
        if src not in self.subscriptions[topic]:
            self.subscriptions[topic].append(src)
        self.store.put(NS_SUBS, sub_key(topic, src), b"")

    def _on_unsubscribe(self, src: str, message) -> None:
        topic = message.payload.topic
        if src in self.subscriptions[topic]:
            self.subscriptions[topic].remove(src)
        self.store.delete(NS_SUBS, sub_key(topic, src))

    def _recover_registrations(self) -> int:
        """Reload the durable registries after a restart (same rules as
        the simulator DS): recovered subscribers whose connections died
        with the old process simply drop deliveries until they redial."""
        recovered = 0
        for _key, value in self.store.items(NS_TOKENS):
            entry = decode_token(value)
            if entry not in self.registered_tokens:
                self.registered_tokens.append(entry)
                recovered += 1
        for key, _value in self.store.items(NS_SUBS):
            topic, client = decode_sub_key(key)
            if client not in self.subscriptions[topic]:
                self.subscriptions[topic].append(client)
                recovered += 1
        return recovered

    def _on_ack(self, src: str, message) -> None:
        self.acked_count += 1

    async def _on_publish(self, src: str, message) -> None:
        frame: JmsFrame = message.payload
        self.published_count += 1
        kind = frame.headers.get("p3s-kind")
        if kind == KIND_METADATA:
            self.publications_by_publisher[src] += 1
            self.observed_sizes.append((KIND_METADATA, frame.body_size))
            if self.registered_tokens and self.group is not None:
                await self._delegated_fan_out(frame)
            else:
                with obs.span(
                    "ds.fan_out",
                    component=self.name,
                    parent=obs.extract(frame.headers),
                    subscribers=self.subscriber_count(self.metadata_topic),
                ) as span:
                    obs.inject(frame.headers, span)
                    await self._fan_out(self.metadata_topic, frame)
        elif kind == KIND_PAYLOAD:
            self.observed_sizes.append((KIND_PAYLOAD, frame.body_size))
            await self._forward_to_rs(frame)
        elif kind == KIND_TOKEN_REG:
            self._register_token(src, frame.body)
        elif kind == KIND_TOKEN_UNREG:
            self._unregister_token(src, frame.body)
        else:
            await self._fan_out(frame.topic, frame)

    # -- fan-out --------------------------------------------------------------

    def _delivery_frame(self, topic: str, frame: JmsFrame) -> JmsFrame:
        return JmsFrame(
            topic=topic,
            body=frame.body,
            body_size=frame.body_size,
            message_id=next(self._message_ids),
            headers=dict(frame.headers),
        )

    async def _fan_out(self, topic: str, frame: JmsFrame) -> None:
        delivery = self._delivery_frame(topic, frame)
        for client in list(self.subscriptions[topic]):
            await self._deliver_to(client, delivery)

    async def _deliver_to(self, client: str, frame: JmsFrame) -> None:
        try:
            await self.endpoint.cast(client, frames.DELIVER, frame)
            self.delivered_count += 1
        except TransportError:
            # the subscriber's connection is gone — same as a broker
            # losing frames to a disconnected client
            obs.record_op("ds.delivery_dropped")

    def _rs_targets(self, guid: bytes) -> list[str]:
        if self.cluster is not None and len(self.cluster.rs_names) > 1:
            return list(self.cluster.rs_replicas(guid))
        return [self.rs_name]

    async def _forward_to_rs(self, frame: JmsFrame) -> None:
        submission: PayloadSubmission = frame.body
        targets = self._rs_targets(submission.guid)
        with obs.span(
            "ds.forward_rs",
            component=self.name,
            parent=obs.extract(frame.headers),
            replicas=len(targets),
        ) as span:
            for target in targets:
                await self.endpoint.cast(
                    target, RPC_STORE, submission, headers=obs.inject({}, span)
                )

    # -- delegated matching (same rules as repro.core.ds) ----------------------

    def _register_token(self, src: str, token_bytes: bytes) -> None:
        entry = (src, bytes(token_bytes))
        if entry not in self.registered_tokens:
            self.registered_tokens.append(entry)
            self.store.put(
                NS_TOKENS, token_key(src, entry[1]), encode_token(src, entry[1])
            )
            obs.record_op("ds.token_reg")
            if self.group is not None:
                # warm the worker pool now, not on the first publication —
                # readiness (`match_pool_warm`) should flip when the DS
                # commits to delegated matching, and the first matched
                # fan-out should not pay the fork cost
                self.match_pool

    def _unregister_token(self, src: str, token_bytes: bytes) -> None:
        entry = (src, bytes(token_bytes))
        if entry in self.registered_tokens:
            self.registered_tokens.remove(entry)
            self.store.delete(NS_TOKENS, token_key(src, entry[1]))
            obs.record_op("ds.token_unreg")

    @property
    def match_pool(self) -> MatchPool:
        if self._match_pool is None:
            self._match_pool = MatchPool(self.group, workers=self.match_workers)
        return self._match_pool

    async def _delegated_fan_out(self, frame: JmsFrame) -> None:
        tokens = list(self.registered_tokens)
        envelope = frame.body
        span = obs.start_span(
            "ds.delegated_fan_out",
            component=self.name,
            parent=obs.extract(frame.headers),
            tokens=len(tokens),
        )
        pool = self.match_pool
        # run the batch off the event loop so the DS keeps serving frames
        matched = await asyncio.to_thread(
            pool.match_indices, envelope.hve_bytes, [token for _, token in tokens]
        )
        matched_names = {tokens[index][0] for index in matched}
        token_holders = {name for name, _ in tokens}
        delivery = self._delivery_frame(self.metadata_topic, frame)
        obs.inject(delivery.headers, span)
        skipped = 0
        for client in list(self.subscriptions[self.metadata_topic]):
            if client in token_holders and client not in matched_names:
                skipped += 1
                continue
            await self._deliver_to(client, delivery)
        obs.record_op("ds.delegated_match")
        if skipped:
            obs.record_op("ds.fanout_skipped", skipped)
        obs.end_span(span, matched=len(matched_names), skipped=skipped)

    def subscriber_count(self, topic: str) -> int:
        return len(self.subscriptions[topic])

    def health_checks(self) -> dict[str, bool]:
        checks = super().health_checks()
        # the pool is only part of readiness once delegated matching is in
        # play: no registered tokens → no pool to warm
        checks["match_pool_warm"] = (
            not self.registered_tokens or self._match_pool is not None
        )
        checks["store_recovered"] = self.store.healthy
        if self.cluster is not None:
            # a DS shard that fell out of the routing ring (membership
            # declared it dead) must read as not-ready until it rejoins
            checks["cluster_member"] = self.name in self.cluster.ds_names
        return checks

    def extra_metrics(self) -> list[dict]:
        samples = super().extra_metrics()
        samples.extend(
            [
                {"name": "ds.published", "labels": {}, "value": self.published_count},
                {"name": "ds.delivered", "labels": {}, "value": self.delivered_count},
                {"name": "ds.acked", "labels": {}, "value": self.acked_count},
                {
                    "name": "ds.subscribers",
                    "labels": {"topic": self.metadata_topic},
                    "value": self.subscriber_count(self.metadata_topic),
                },
                {
                    "name": "ds.registered_tokens",
                    "labels": {},
                    "value": len(self.registered_tokens),
                },
            ]
        )
        if self.cluster is not None:
            samples.extend(
                [
                    {"name": "cluster.ds_shards", "labels": {},
                     "value": len(self.cluster.ds_names)},
                    {"name": "cluster.rs_shards", "labels": {},
                     "value": len(self.cluster.rs_names)},
                    {"name": "cluster.rs_replication", "labels": {},
                     "value": self.cluster.rs_replication},
                    {"name": "cluster.is_member", "labels": {"shard": self.name},
                     "value": int(self.name in self.cluster.ds_names)},
                ]
            )
        samples.extend(_store_samples(self.store, self.recovered_registrations))
        return samples

    async def close(self) -> None:
        if self._match_pool is not None:
            self._match_pool.close()
            self._match_pool = None
        await super().close()
        self.store.close()


class LiveRepositoryServer(_LiveService):
    """The RS over TCP: the same :class:`RepositoryStore` engine on the
    wall clock, with a real periodic GC task."""

    def __init__(
        self,
        endpoint: LiveRpcEndpoint,
        group,
        t_g: float = 60.0,
        gc_interval_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        pke: PKEKeyPair | None = None,
        engine: StorageEngine | None = None,
    ):
        super().__init__(endpoint)
        # injectable keypair: multi-process `repro live serve-rs` must use
        # the PKE key the shared deployment state installed in the directory
        self.pke = pke or PKEKeyPair(group)
        self.gc_interval_s = gc_interval_s
        self.clock = clock
        # now=clock(): recovered items' expiries must be rebased onto
        # *this* process's clock epoch — the persisted readings came from
        # a clock (time.monotonic) whose epoch died with the old boot
        self.store = RepositoryStore(t_g=t_g, engine=engine, now=clock())
        self.observed_sources: list[str] = []
        endpoint.serve(RPC_STORE, self._handle_store)
        endpoint.serve(RPC_RETRIEVE, self._handle_retrieve)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        bound = await super().start(host, port)
        self._background(self._gc_loop())
        return bound

    def _handle_store(self, src: str, message) -> None:
        submission: PayloadSubmission = message.payload
        with obs.span(
            "rs.store",
            component=self.name,
            parent=obs.extract(message.headers),
            bytes=len(submission.ciphertext),
        ):
            self.store.store(submission, now=self.clock())

    def _handle_retrieve(self, src: str, message):
        self.observed_sources.append(src)
        span = obs.start_span(
            "rs.retrieve", component=self.name, parent=obs.extract(message.headers)
        )
        try:
            with obs.attach(span):
                session_key, guid = decode_retrieval_request(self.pke, message.payload)
        except RetrievalError:
            obs.end_span(span, status="malformed")
            return (b"\x00", 1)
        reply, status = self.store.lookup(guid, now=self.clock())
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status, bytes=len(sealed))
        return (sealed, len(sealed))

    async def _gc_loop(self) -> None:
        while True:
            await asyncio.sleep(self.gc_interval_s)
            self.store.collect_garbage(
                now=self.clock(), compact=self.store.engine.durable
            )

    def health_checks(self) -> dict[str, bool]:
        checks = super().health_checks()
        # readiness-meaningful alias: the GC loop is the RS's only
        # background task, and a dead GC means unbounded storage growth
        checks["gc_running"] = bool(self._tasks) and checks["background_tasks_alive"]
        # recovery completes inside RepositoryStore.__init__ (before the
        # listener exists), so an open engine has already replayed to its
        # last committed record; the check only goes false if the engine
        # later stops accepting writes
        checks["store_recovered"] = self.store.engine.healthy
        return checks

    def extra_metrics(self) -> list[dict]:
        samples = super().extra_metrics()
        samples.extend(
            [
                {"name": "rs.stored_items", "labels": {}, "value": self.store.item_count},
                {"name": "rs.expired", "labels": {}, "value": self.store.expired_count},
                {"name": "rs.recovered_items", "labels": {},
                 "value": self.store.recovered_count},
            ]
        )
        samples.extend(_store_samples(self.store.engine, self.store.recovered_count))
        return samples

    async def close(self) -> None:
        await super().close()
        self.store.close()


class LivePBETokenServer(_LiveService):
    """The PBE-TS over TCP: the same :class:`TokenIssuer` engine."""

    def __init__(
        self,
        endpoint: LiveRpcEndpoint,
        issuer: TokenIssuer,
        group,
        clock: Callable[[], float] = time.time,
        pke: PKEKeyPair | None = None,
    ):
        super().__init__(endpoint)
        self.issuer = issuer
        self.pke = pke or PKEKeyPair(group)
        self.clock = clock
        self.observed_sources: list[str] = []
        endpoint.serve(RPC_TOKEN_REQUEST, self._handle_token_request)

    def _handle_token_request(self, src: str, message):
        self.observed_sources.append(src)
        span = obs.start_span(
            "pbe_ts.token_request",
            component=self.name,
            parent=obs.extract(message.headers),
        )
        try:
            with obs.attach(span):
                session_key, certificate, interest = self.issuer.open_request(
                    self.pke, message.payload
                )
        except TokenRequestError:
            obs.end_span(span, status="malformed")
            return (_ERR, 1)
        status = "ok"
        try:
            self.issuer.authorize(certificate, interest, now=self.clock())
            with obs.attach(span):
                token_bytes = self.issuer.mint(certificate.subject, interest)
            reply = _OK + token_bytes
        except (CertificateError, SchemaError, TokenRequestError) as exc:
            reply = _ERR + str(exc).encode("utf-8")
            status = "refused"
        with obs.attach(span):
            sealed = SecretBox(session_key).seal(reply)
        obs.end_span(span, status=status)
        return (sealed, len(sealed))

    def extra_metrics(self) -> list[dict]:
        samples = super().extra_metrics()
        samples.append(
            {
                "name": "pbe_ts.token_requests",
                "labels": {},
                "value": len(self.observed_sources),
            }
        )
        return samples


class LiveAnonymizationService(_LiveService):
    """The anonymizing relay over TCP: re-originates each inner request,
    so the RS/PBE-TS see the relay — never the subscriber — as the caller."""

    def __init__(self, endpoint: LiveRpcEndpoint):
        super().__init__(endpoint)
        self.forwarded_count = 0
        self.observed_links: list[tuple[str, str]] = []
        endpoint.serve(RPC_ANON_FORWARD, self._handle_forward)

    async def _handle_forward(self, src: str, message):
        envelope: AnonEnvelope = message.payload
        self.observed_links.append((src, envelope.dst))
        self.forwarded_count += 1
        span = obs.start_span(
            "anon.forward",
            component=self.name,
            parent=obs.extract(message.headers),
            dst=envelope.dst,
        )
        response = await self.endpoint.call(
            envelope.dst,
            envelope.inner_type,
            envelope.inner_payload,
            headers=obs.inject({}, span),
        )
        obs.end_span(span)
        return (response, wire_size_of(response))

    def extra_metrics(self) -> list[dict]:
        samples = super().extra_metrics()
        samples.append(
            {"name": "anon.forwarded", "labels": {}, "value": self.forwarded_count}
        )
        return samples
