"""Multi-process deployment: shared state + per-role service runners.

A live P3S deployment split across OS processes needs all parties to
agree on the trust root — the ARA's keys, each service's channel
identity, the RS/PBE-TS PKE keypairs, and the port plan.  The paper's
answer is registration: the ARA provisions everyone *before* traffic
flows (§4.3).  :func:`init_state` is that registration step as a CLI
action — it mints everything once and writes a state bundle to disk;
``repro live serve-<role> --state FILE`` processes then load the bundle
and serve exactly one party, and ``repro live run --state FILE`` drives
publisher/subscriber clients against them.

The bundle contains private key material (it *is* the ARA), so it is
plainly a secrets file: keep it on the deployment host.
"""

from __future__ import annotations

import asyncio
import os
import pickle
from dataclasses import dataclass, field

from ..cluster.router import ClusterMap, shard_names
from ..core.ara import RegistrationAuthority
from ..core.config import P3SConfig
from ..core.pbe_ts import TokenIssuer
from ..crypto.group import PairingGroup
from ..crypto.pke import PKEKeyPair
from ..errors import RegistrationError
from ..pbe.hve import HVE
from ..store import StorageEngine, open_engine
from .channel import ServerIdentity
from .clients import LivePublisher, LiveSubscriber
from .deployment import ANON_NAME, DS_NAME, PBE_TS_NAME, RS_NAME
from .rpc import AddressBook, LiveRpcEndpoint
from .services import (
    LiveAnonymizationService,
    LiveDisseminationServer,
    LivePBETokenServer,
    LiveRepositoryServer,
)

__all__ = [
    "DeploymentState",
    "SERVICE_ROLES",
    "init_state",
    "load_state",
    "build_service",
    "serve_role",
    "service_roles",
    "run_clients",
]

SERVICE_ROLES = (DS_NAME, RS_NAME, PBE_TS_NAME, ANON_NAME)


def service_roles(state: "DeploymentState") -> tuple[str, ...]:
    """Every role this bundle provisions (shard-aware port-plan order)."""
    return tuple(state.ports)


@dataclass
class DeploymentState:
    """Everything the ARA provisions at registration time, picklable."""

    host: str
    ports: dict[str, int]
    config: P3SConfig
    ara: RegistrationAuthority
    identities: dict[str, ServerIdentity]
    rs_pke: PKEKeyPair
    pbe_ts_pke: PKEKeyPair
    registered_clients: dict[str, str] = field(default_factory=dict)
    # durable persistence (repro.store): directory holding one subtree
    # per service, and the per-service at-rest sealing keys minted at
    # registration time (the bundle is already the secrets file)
    data_dir: str | None = None
    store_keys: dict[str, bytes] = field(default_factory=dict)
    # per-RS-shard PKE keypairs (sharded bundles); ``rs_pke`` stays the
    # first shard's pair so pre-cluster bundles keep loading
    rs_pkes: dict[str, PKEKeyPair] = field(default_factory=dict)

    @property
    def group(self) -> PairingGroup:
        return self.ara.group

    @property
    def cluster(self) -> ClusterMap | None:
        return getattr(self.ara.directory, "cluster", None)

    def open_store(self, role: str) -> StorageEngine | None:
        """Open ``role``'s storage engine per the deployment config.

        None with the ``memory`` backend — the service builds its own
        volatile engine, the pre-persistence behaviour.
        """
        backend = self.config.store_backend
        if backend == "memory":
            return None
        if self.data_dir is None:
            raise RegistrationError(
                f"store_backend={backend!r} needs `repro live init --data-dir`"
            )
        root = os.path.join(self.data_dir, role)
        path = os.path.join(root, "store.db") if backend == "sqlite" else root
        if backend == "sqlite":
            os.makedirs(root, exist_ok=True)
        return open_engine(
            backend,
            path,
            key=self.store_keys.get(role),
            fsync=self.config.store_fsync,
            snapshot_every=self.config.store_snapshot_every,
            component=role,
        )

    def address_book(self) -> AddressBook:
        book = AddressBook()
        for name, identity in self.identities.items():
            book.register(name, self.host, self.ports[name], identity.service_key)
        return book

    def endpoint(self, name: str, identity: ServerIdentity | None = None) -> LiveRpcEndpoint:
        return LiveRpcEndpoint(
            name,
            self.address_book(),
            ara_verify_key=self.ara.directory.ara_verify_key,
            identity=identity,
        )


def init_state(
    path: str,
    host: str = "127.0.0.1",
    base_port: int = 7341,
    config: P3SConfig | None = None,
    data_dir: str | None = None,
) -> DeploymentState:
    """Mint a deployment's trust material and write it to ``path``.

    ``data_dir`` turns on durable persistence: the RS and DS open
    ``repro.store`` engines under ``<data_dir>/<role>`` (backend from
    ``config.store_backend``, defaulting to ``wal`` when a data dir is
    given), each sealed with its own key minted here.
    """
    config = config or P3SConfig()
    if data_dir is not None and config.store_backend == "memory":
        config = config.with_(store_backend="wal")
    if data_dir is None and config.store_backend != "memory":
        raise RegistrationError(
            f"store_backend={config.store_backend!r} needs --data-dir"
        )
    ds_names = shard_names(DS_NAME, config.ds_shards)
    rs_names = shard_names(RS_NAME, config.rs_shards)
    replication = max(1, min(config.rs_replication, len(rs_names)))
    roles = (*ds_names, *rs_names, PBE_TS_NAME, ANON_NAME)
    group = PairingGroup(config.param_set)
    ara = RegistrationAuthority(group, config.schema)
    identities = {name: ServerIdentity.issue(ara, group, name) for name in roles}
    rs_pkes = {name: PKEKeyPair(group) for name in rs_names}
    rs_pke = rs_pkes[rs_names[0]]
    pbe_ts_pke = PKEKeyPair(group)
    ara.install_service("ds", ds_names[0])
    ara.install_service("rs", rs_names[0], rs_pke.public)
    ara.install_service("pbe_ts", PBE_TS_NAME, pbe_ts_pke.public)
    ara.install_service("anonymizer", ANON_NAME)
    if len(ds_names) > 1 or len(rs_names) > 1 or replication > 1:
        # the cluster map rides inside the pickled directory, so every
        # serve-* process and every client loads the same topology
        ara.directory.cluster = ClusterMap(
            ds_names=list(ds_names),
            rs_names=list(rs_names),
            rs_replication=replication,
            rs_public_keys={name: pke.public for name, pke in rs_pkes.items()},
        )
    store_keys: dict[str, bytes] = {}
    if data_dir is not None:
        os.makedirs(data_dir, exist_ok=True)
        store_keys = {role: os.urandom(32) for role in (*rs_names, *ds_names)}
    state = DeploymentState(
        host=host,
        ports={name: base_port + index for index, name in enumerate(roles)},
        config=config,
        ara=ara,
        identities=identities,
        rs_pke=rs_pke,
        pbe_ts_pke=pbe_ts_pke,
        data_dir=data_dir,
        store_keys=store_keys,
        rs_pkes=rs_pkes,
    )
    with open(path, "wb") as handle:
        pickle.dump(state, handle)
    return state


def load_state(path: str) -> DeploymentState:
    with open(path, "rb") as handle:
        state = pickle.load(handle)
    if not isinstance(state, DeploymentState):
        raise RegistrationError(f"{path} is not a live deployment state bundle")
    return state


def build_service(role: str, state: DeploymentState):
    """Instantiate one third party from the shared state bundle.

    ``role`` is a concrete service name from the bundle's port plan —
    ``ds``/``rs`` on single-node bundles, ``ds0``/``rs1``/… on sharded
    ones.
    """
    if role in state.ports and role.startswith(DS_NAME):
        rs_names = shard_names(RS_NAME, getattr(state.config, "rs_shards", 1))
        return LiveDisseminationServer(
            state.endpoint(role, state.identities[role]),
            rs_names[0],
            metadata_topic=state.config.metadata_topic,
            group=state.group,
            match_workers=state.config.match_workers,
            store=state.open_store(role),
            cluster=state.cluster,
        )
    if role in state.ports and role.startswith(RS_NAME):
        pke = getattr(state, "rs_pkes", {}).get(role, state.rs_pke)
        return LiveRepositoryServer(
            state.endpoint(role, state.identities[role]),
            state.group,
            t_g=state.config.t_g,
            gc_interval_s=state.config.rs_gc_interval_s,
            pke=pke,
            engine=state.open_store(role),
        )
    if role == PBE_TS_NAME:
        master_key, verify_key = state.ara.provision_pbe_ts()
        issuer = TokenIssuer(
            HVE(state.group),
            master_key,
            state.config.schema,
            verify_key,
            subscription_policy=state.config.subscription_policy,
        )
        return LivePBETokenServer(
            state.endpoint(PBE_TS_NAME, state.identities[PBE_TS_NAME]),
            issuer,
            state.group,
            pke=state.pbe_ts_pke,
        )
    if role == ANON_NAME:
        return LiveAnonymizationService(
            state.endpoint(ANON_NAME, state.identities[ANON_NAME])
        )
    raise RegistrationError(
        f"unknown service role {role!r}; expected one of {service_roles(state)}"
    )


async def serve_role(role: str, state: DeploymentState) -> None:
    """Start one service on its assigned port and serve until cancelled.

    A served role always has telemetry to report: when the process has no
    observability installed, a default bounded one (flight-recorder span
    storage at the stock capacity) is installed so ``KIND_METRICS`` /
    ``KIND_SPANS`` answer with real data instead of empty snapshots —
    and memory stays flat however long the service runs.

    Continuous profiling rides along: unless ``P3S_PROFILE=off``, the
    installed observability gets a background
    :class:`~repro.obs.prof.sampler.StackSampler` (``P3S_PROFILE_HZ``,
    default 19 — a deliberately gentle always-on rate) whose cumulative
    profile the ``KIND_PROFILE`` RPC serves.
    """
    import os

    from ..obs import Observability
    from ..obs import profile as obs_profile
    from ..obs.ring import DEFAULT_FLIGHT_RECORDER_CAPACITY

    if obs_profile.active() is None:
        Observability(span_capacity=DEFAULT_FLIGHT_RECORDER_CAPACITY).install()
    obs = obs_profile.active()
    profiler = None
    if obs.profiler is None and os.environ.get("P3S_PROFILE", "wall") != "off":
        from ..obs.prof import StackSampler

        hz = float(os.environ.get("P3S_PROFILE_HZ", "19"))
        profiler = obs.profiler = StackSampler(hz=hz, origin=f"{role}-wall")
        profiler.start()
    service = build_service(role, state)
    bound_host, bound_port = await service.start(state.host, state.ports[role])
    print(f"{role}: listening on {bound_host}:{bound_port}", flush=True)
    try:
        await asyncio.Event().wait()
    finally:
        if profiler is not None:
            profiler.stop()
        await service.close()


async def run_clients(state: DeploymentState, scenario) -> dict[str, tuple[bytes, ...]]:
    """Drive a scenario's clients against already-running services."""
    subscribers: dict[str, LiveSubscriber] = {}
    publisher: LivePublisher | None = None
    try:
        for spec in scenario.subscribers:
            subscriber = LiveSubscriber(
                state.ara.register_subscriber(spec.name, set(spec.attributes)),
                state.endpoint(spec.name),
                state.group,
                use_anonymizer=state.config.use_anonymizer,
                guid_bytes=state.config.guid_bytes,
                metadata_topic=state.config.metadata_topic,
                delegate_tokens=state.config.delegated_matching,
            )
            await subscriber.connect()
            for interest in spec.interests:
                await subscriber.subscribe(interest)
            subscribers[spec.name] = subscriber
        publisher = LivePublisher(
            state.ara.register_publisher(scenario.publisher_name),
            state.endpoint(scenario.publisher_name),
            state.group,
            guid_bytes=state.config.guid_bytes,
        )
        await publisher.connect()
        for publication in scenario.publications:
            await publisher.publish(
                publication.metadata_dict,
                publication.payload,
                policy=publication.policy,
                ttl_s=publication.ttl_s,
            )
        await asyncio.sleep(1.0)  # no delivery oracle across processes: settle
        return {
            name: tuple(sorted(d.payload for d in sub.stats.deliveries))
            for name, sub in subscribers.items()
        }
    finally:
        if publisher is not None:
            await publisher.close()
        for subscriber in subscribers.values():
            await subscriber.close()
