"""Authenticated-encryption channel over one TCP connection.

This is the live substrate's counterpart of the simulator's *modeled*
TLS layer (:mod:`repro.net.channel`): instead of accounting a constant
record overhead, every frame really is protected by the repo's own
ChaCha20+HMAC AEAD (:class:`repro.crypto.symmetric.SecretBox`).

**Handshake** (one round trip, server authenticated by an ARA-signed key
binding — the "public key certificates" the ARA distributes in §4.3):

1. The client verifies the server's :class:`ServiceKey` — an ARA
   signature over ``name || PKE public key`` (see
   :meth:`repro.core.ara.RegistrationAuthority.sign_service_key`).
2. ``client → server`` (cleartext): ``MAGIC || client_name ||
   PKE_encrypt(server_pk, pre_master(32) || nonce(16))`` — an
   ECIES-style key transport under the server's key
   (:mod:`repro.crypto.pke`).
3. Both sides derive directional record keys with the KDF:
   ``k_c2s = kdf(pre_master, "live-c2s")``, ``k_s2c = kdf(pre_master,
   "live-s2c")``.
4. ``server → client``: the first protected s2c record, whose plaintext
   must echo the client's nonce — decrypting it proves the server holds
   the private key; a wrong echo or MAC failure is a
   :class:`~repro.errors.HandshakeError`.

**Record protection**: each frame travels as ``u32 len || u64 seq ||
SecretBox.seal(frame, associated_data=seq)``.  The receiver enforces
exactly-once, in-order sequence numbers: a gap raises
:class:`~repro.errors.MessageLossError` (§6.1 loss detection, for real),
a MAC failure raises :class:`~repro.errors.TransportError`.

The client *name* sent in the hello identifies the connection (the DS
knows who is connected — §6.1 already grants it that); client
*authorization* stays where the paper puts it, in the application-layer
certificates inside token requests.
"""

from __future__ import annotations

import asyncio
import secrets
import struct
from dataclasses import dataclass

from ..core.ara import SERVICE_KEY_CONTEXT
from ..crypto.hashing import kdf
from ..crypto.pke import PKEKeyPair, PKEPublicKey
from ..crypto.signing import Signature, VerifyKey
from ..errors import (
    DecryptionError,
    HandshakeError,
    MessageLossError,
    TransportError,
)
from ..crypto.symmetric import SecretBox
from .wire import MAX_FRAME_BYTES

__all__ = ["ServiceKey", "ServerIdentity", "SecureChannel", "connect_channel", "accept_channel"]

MAGIC = b"P3SL1\n"
HANDSHAKE_TIMEOUT_S = 10.0


@dataclass(frozen=True)
class ServiceKey:
    """A signed directory entry: ``name ↔ PKE public key``, ARA-vouched."""

    name: str
    public_key: PKEPublicKey
    signature: Signature

    def verify(self, ara_verify_key: VerifyKey) -> bool:
        message = SERVICE_KEY_CONTEXT + self.name.encode("utf-8") + self.public_key.to_bytes()
        return ara_verify_key.verify(message, self.signature)


class ServerIdentity:
    """A live service's channel identity: keypair + ARA signature."""

    def __init__(self, name: str, keypair: PKEKeyPair, signature: Signature):
        self.name = name
        self.keypair = keypair
        self.signature = signature

    @classmethod
    def issue(cls, ara, group, name: str) -> "ServerIdentity":
        """Mint a fresh channel keypair and have the ARA sign the binding."""
        keypair = PKEKeyPair(group)
        return cls(name, keypair, ara.sign_service_key(name, keypair.public.to_bytes()))

    @property
    def service_key(self) -> ServiceKey:
        """The public, distributable half (what goes in the directory)."""
        return ServiceKey(self.name, self.keypair.public, self.signature)


class SecureChannel:
    """Sequenced AEAD record stream over one established connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        send_box: SecretBox,
        recv_box: SecretBox,
        local_name: str,
        peer_name: str,
    ):
        self._reader = reader
        self._writer = writer
        self._send_box = send_box
        self._recv_box = recv_box
        self.local_name = local_name
        self.peer_name = peer_name
        self._send_seq = 0
        self._recv_seq = 0
        self._send_lock = asyncio.Lock()
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.records_sent = 0
        self.records_received = 0

    @property
    def closed(self) -> bool:
        return self._closed

    async def send_record(self, record: bytes) -> int:
        """Seal and transmit one record; sequence number rides in the AAD.

        Returns the wire length (length prefix + sequence + AEAD seal) so
        callers can account real transmitted bytes per peer.
        """
        if self._closed:
            raise TransportError(f"channel {self.local_name}→{self.peer_name} is closed")
        async with self._send_lock:
            seq = self._send_seq
            self._send_seq += 1
            sealed = self._send_box.seal(record, associated_data=_seq_bytes(seq))
            wire = struct.pack(">IQ", len(sealed) + 8, seq) + sealed
            try:
                self._writer.write(wire)
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._closed = True
                raise TransportError(
                    f"send to {self.peer_name} failed: {exc}"
                ) from exc
            self.bytes_sent += len(wire)
            self.records_sent += 1
            return len(wire)

    async def recv_record(self) -> bytes:
        """Receive, authenticate, and sequence-check one record."""
        if self._closed:
            raise TransportError(f"channel {self.local_name}←{self.peer_name} is closed")
        try:
            header = await self._reader.readexactly(4)
            (length,) = struct.unpack(">I", header)
            if length < 8 or length > MAX_FRAME_BYTES:
                raise TransportError(f"invalid record length {length}")
            body = await self._reader.readexactly(length)
            self.bytes_received += 4 + length
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            self._closed = True
            raise TransportError(
                f"connection to {self.peer_name} lost: {exc}"
            ) from exc
        (seq,) = struct.unpack_from(">Q", body, 0)
        expected = self._recv_seq
        if seq != expected:
            self._closed = True
            raise MessageLossError(
                f"{self.local_name}: record gap from {self.peer_name}: "
                f"expected seq {expected}, got {seq}"
            )
        self._recv_seq += 1
        self.records_received += 1
        try:
            return self._recv_box.open(body[8:], associated_data=_seq_bytes(seq))
        except DecryptionError as exc:
            self._closed = True
            raise TransportError(
                f"{self.local_name}: record from {self.peer_name} failed "
                f"authentication: {exc}"
            ) from exc

    async def close(self) -> None:
        """Graceful half: flush, FIN, release."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone


def _seq_bytes(seq: int) -> bytes:
    return struct.pack(">Q", seq)


def _derive_boxes(pre_master: bytes) -> tuple[SecretBox, SecretBox]:
    """(client→server box, server→client box) from the shared secret."""
    return SecretBox(kdf(pre_master, "live-c2s")), SecretBox(kdf(pre_master, "live-s2c"))


async def connect_channel(
    host: str,
    port: int,
    server_key: ServiceKey,
    ara_verify_key: VerifyKey | None,
    client_name: str,
    timeout: float = HANDSHAKE_TIMEOUT_S,
) -> SecureChannel:
    """Dial a live service and run the client side of the handshake."""
    if ara_verify_key is not None and not server_key.verify(ara_verify_key):
        raise HandshakeError(
            f"service key for {server_key.name!r} does not verify under the ARA key"
        )
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        raise TransportError(f"connect to {server_key.name} at {host}:{port} failed: {exc}") from exc
    try:
        pre_master = secrets.token_bytes(32)
        nonce = secrets.token_bytes(16)
        sealed = server_key.public_key.encrypt(pre_master + nonce)
        name_bytes = client_name.encode("utf-8")
        writer.write(
            MAGIC
            + struct.pack(">H", len(name_bytes))
            + name_bytes
            + struct.pack(">I", len(sealed))
            + sealed
        )
        await writer.drain()
        c2s_box, s2c_box = _derive_boxes(pre_master)
        channel = SecureChannel(
            reader, writer, c2s_box, s2c_box, client_name, server_key.name
        )
        echo = await asyncio.wait_for(channel.recv_record(), timeout)
        if echo != nonce:
            raise HandshakeError(f"{server_key.name} returned a wrong handshake echo")
        return channel
    except (TransportError, asyncio.TimeoutError) as exc:
        writer.close()
        if isinstance(exc, HandshakeError):
            raise
        raise HandshakeError(f"handshake with {server_key.name} failed: {exc}") from exc


async def accept_channel(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    identity: ServerIdentity,
    timeout: float = HANDSHAKE_TIMEOUT_S,
) -> SecureChannel:
    """Run the server side of the handshake on one accepted connection."""
    try:
        magic = await asyncio.wait_for(reader.readexactly(len(MAGIC)), timeout)
        if magic != MAGIC:
            raise HandshakeError(f"bad protocol magic {magic!r}")
        (name_len,) = struct.unpack(">H", await reader.readexactly(2))
        client_name = (await reader.readexactly(name_len)).decode("utf-8")
        (sealed_len,) = struct.unpack(">I", await reader.readexactly(4))
        if sealed_len > MAX_FRAME_BYTES:
            raise HandshakeError(f"oversized handshake ciphertext ({sealed_len} bytes)")
        sealed = await asyncio.wait_for(reader.readexactly(sealed_len), timeout)
    except (asyncio.IncompleteReadError, asyncio.TimeoutError, ConnectionError, OSError) as exc:
        writer.close()
        raise HandshakeError(f"handshake read failed: {exc}") from exc
    try:
        secretes = identity.keypair.decrypt(sealed)
    except DecryptionError as exc:
        writer.close()
        raise HandshakeError(f"client hello not addressed to {identity.name}: {exc}") from exc
    if len(secretes) != 48:
        writer.close()
        raise HandshakeError("malformed client hello secret block")
    pre_master, nonce = secretes[:32], secretes[32:]
    c2s_box, s2c_box = _derive_boxes(pre_master)
    channel = SecureChannel(reader, writer, s2c_box, c2s_box, identity.name, client_name)
    await channel.send_record(nonce)  # first s2c record: prove key possession
    return channel
