"""Serialization for CP-ABE keys and ciphertexts.

Wire formats are fixed-width and length-prefixed so that (a) every object
round-trips exactly and (b) the byte sizes feeding the performance models
come from real encodings rather than estimates.
"""

from __future__ import annotations

import struct

from ..crypto.field import Fq2
from ..crypto.group import PairingGroup
from ..errors import SerializationError
from .bsw07 import CPABECiphertext, CPABEMasterKey, CPABEPublicKey, CPABESecretKey
from .hybrid import HybridCiphertext
from .policy import parse_policy, policy_to_string

__all__ = [
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_secret_key",
    "deserialize_secret_key",
    "serialize_public_key",
    "deserialize_public_key",
    "serialize_master_key",
    "deserialize_master_key",
    "serialize_hybrid",
    "deserialize_hybrid",
    "cpabe_ciphertext_size",
]


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _unpack_bytes(buffer: bytes, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(buffer):
        raise SerializationError("truncated length prefix")
    (length,) = struct.unpack_from(">I", buffer, offset)
    offset += 4
    if offset + length > len(buffer):
        raise SerializationError("truncated field")
    return buffer[offset : offset + length], offset + length


def serialize_ciphertext(group: PairingGroup, ciphertext: CPABECiphertext) -> bytes:
    parts = [
        _pack_bytes(policy_to_string(ciphertext.policy).encode("utf-8")),
        _pack_bytes(group.serialize_gt(ciphertext.c_tilde)),
        _pack_bytes(group.serialize_g1(ciphertext.c)),
        struct.pack(">I", len(ciphertext.leaf_components)),
    ]
    for attribute, c_y, c_y_prime in ciphertext.leaf_components:
        parts.append(_pack_bytes(attribute.encode("utf-8")))
        parts.append(_pack_bytes(group.serialize_g1(c_y)))
        parts.append(_pack_bytes(group.serialize_g1(c_y_prime)))
    return b"".join(parts)


def deserialize_ciphertext(group: PairingGroup, data: bytes) -> CPABECiphertext:
    policy_text, offset = _unpack_bytes(data, 0)
    c_tilde_raw, offset = _unpack_bytes(data, offset)
    c_raw, offset = _unpack_bytes(data, offset)
    if offset + 4 > len(data):
        raise SerializationError("truncated leaf count")
    (leaf_count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    leaves = []
    for _ in range(leaf_count):
        attribute_raw, offset = _unpack_bytes(data, offset)
        c_y_raw, offset = _unpack_bytes(data, offset)
        c_y_prime_raw, offset = _unpack_bytes(data, offset)
        leaves.append(
            (
                attribute_raw.decode("utf-8"),
                group.deserialize_g1(c_y_raw),
                group.deserialize_g1(c_y_prime_raw),
            )
        )
    policy = parse_policy(policy_text.decode("utf-8"))
    if len(policy.leaves()) != leaf_count:
        raise SerializationError("leaf components do not match policy")
    return CPABECiphertext(
        policy=policy,
        c_tilde=group.deserialize_gt(c_tilde_raw),
        c=group.deserialize_g1(c_raw),
        leaf_components=tuple(leaves),
    )


def serialize_secret_key(group: PairingGroup, key: CPABESecretKey) -> bytes:
    parts = [_pack_bytes(group.serialize_g1(key.d)), struct.pack(">I", len(key.components))]
    for attribute in sorted(key.components):
        d_j, d_j_prime = key.components[attribute]
        parts.append(_pack_bytes(attribute.encode("utf-8")))
        parts.append(_pack_bytes(group.serialize_g1(d_j)))
        parts.append(_pack_bytes(group.serialize_g1(d_j_prime)))
    return b"".join(parts)


def deserialize_secret_key(group: PairingGroup, data: bytes) -> CPABESecretKey:
    d_raw, offset = _unpack_bytes(data, 0)
    if offset + 4 > len(data):
        raise SerializationError("truncated component count")
    (count,) = struct.unpack_from(">I", data, offset)
    offset += 4
    components = {}
    for _ in range(count):
        attribute_raw, offset = _unpack_bytes(data, offset)
        d_j_raw, offset = _unpack_bytes(data, offset)
        d_j_prime_raw, offset = _unpack_bytes(data, offset)
        components[attribute_raw.decode("utf-8")] = (
            group.deserialize_g1(d_j_raw),
            group.deserialize_g1(d_j_prime_raw),
        )
    return CPABESecretKey(
        attributes=frozenset(components),
        d=group.deserialize_g1(d_raw),
        components=components,
    )


def serialize_public_key(group: PairingGroup, public: CPABEPublicKey) -> bytes:
    """PK_C — what the ARA ships to publishers (Fig. 2)."""
    return (
        _pack_bytes(group.serialize_g1(public.g))
        + _pack_bytes(group.serialize_g1(public.h))
        + _pack_bytes(group.serialize_g1(public.f))
        + _pack_bytes(group.serialize_gt(public.e_gg_alpha))
    )


def deserialize_public_key(group: PairingGroup, data: bytes) -> CPABEPublicKey:
    g_raw, offset = _unpack_bytes(data, 0)
    h_raw, offset = _unpack_bytes(data, offset)
    f_raw, offset = _unpack_bytes(data, offset)
    egg_raw, offset = _unpack_bytes(data, offset)
    if offset != len(data):
        raise SerializationError("trailing bytes after CP-ABE public key")
    return CPABEPublicKey(
        g=group.deserialize_g1(g_raw),
        h=group.deserialize_g1(h_raw),
        f=group.deserialize_g1(f_raw),
        e_gg_alpha=group.deserialize_gt(egg_raw),
    )


def serialize_master_key(group: PairingGroup, master: CPABEMasterKey) -> bytes:
    """MSK — held by the ARA only; serialized for at-rest storage."""
    return master.beta.to_bytes(group.zr_bytes, "big") + group.serialize_g1(master.g_alpha)


def deserialize_master_key(group: PairingGroup, data: bytes) -> CPABEMasterKey:
    width = group.zr_bytes
    if len(data) != width + group.g1_bytes:
        raise SerializationError("bad CP-ABE master key length")
    return CPABEMasterKey(
        beta=int.from_bytes(data[:width], "big"),
        g_alpha=group.deserialize_g1(data[width:]),
    )


def serialize_hybrid(group: PairingGroup, ciphertext: HybridCiphertext) -> bytes:
    return _pack_bytes(serialize_ciphertext(group, ciphertext.kem)) + _pack_bytes(
        ciphertext.sealed
    )


def deserialize_hybrid(group: PairingGroup, data: bytes) -> HybridCiphertext:
    kem_raw, offset = _unpack_bytes(data, 0)
    sealed, offset = _unpack_bytes(data, offset)
    if offset != len(data):
        raise SerializationError("trailing bytes after hybrid ciphertext")
    return HybridCiphertext(kem=deserialize_ciphertext(group, kem_raw), sealed=sealed)


def cpabe_ciphertext_size(group: PairingGroup, num_leaves: int, payload_len: int, policy_text_len: int = 0) -> int:
    """Exact wire size of a hybrid CP-ABE ciphertext.

    Mirrors the paper's ``c_A ≈ 2·V·k + m`` model: two G1 elements per
    policy leaf plus the GT header and the AEAD-sealed payload.
    """
    from ..crypto.symmetric import OVERHEAD

    kem = (
        4 + policy_text_len
        + 4 + group.gt_bytes
        + 4 + group.g1_bytes
        + 4
        + num_leaves * (4 + 16 + 2 * (4 + group.g1_bytes))  # ~16-byte attribute names
    )
    return 4 + kem + 4 + payload_len + OVERHEAD
