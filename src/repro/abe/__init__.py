"""Ciphertext-Policy Attribute-Based Encryption (BSW07) with policy language.

Public API::

    from repro.abe import CPABE, HybridCPABE, parse_policy

    group = PairingGroup("TOY")
    scheme = HybridCPABE(group)
    public, master = scheme.setup()
    key = scheme.keygen(master, {"org:acme", "role:analyst"})
    ct = scheme.encrypt(public, b"payload", "org:acme and role:analyst")
    assert scheme.decrypt(key, ct) == b"payload"
"""

from .policy import PolicyNode, parse_policy, policy_to_string
from .bsw07 import CPABE, CPABECiphertext, CPABEMasterKey, CPABEPublicKey, CPABESecretKey
from .hybrid import HybridCPABE, HybridCiphertext
from .serialize import (
    cpabe_ciphertext_size,
    deserialize_ciphertext,
    deserialize_hybrid,
    deserialize_secret_key,
    serialize_ciphertext,
    serialize_hybrid,
    serialize_secret_key,
)

__all__ = [
    "PolicyNode",
    "parse_policy",
    "policy_to_string",
    "CPABE",
    "CPABECiphertext",
    "CPABEMasterKey",
    "CPABEPublicKey",
    "CPABESecretKey",
    "HybridCPABE",
    "HybridCiphertext",
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_secret_key",
    "deserialize_secret_key",
    "serialize_hybrid",
    "deserialize_hybrid",
    "cpabe_ciphertext_size",
]
