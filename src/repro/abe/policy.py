"""Access-policy trees and the policy expression language for CP-ABE.

A policy is a tree of threshold gates over attribute leaves, exactly as in
Bethencourt-Sahai-Waters (the construction P3S uses, paper §3.2):

* ``AND`` is an n-of-n gate, ``OR`` a 1-of-n gate, and ``k of (...)`` a
  general threshold gate.
* Leaves name attributes (e.g. ``"org:acme"``, ``"role:analyst"``).

The textual language accepted by :func:`parse_policy`::

    role:analyst and (org:acme or org:partner)
    2 of (clearance:secret, country:us, country:uk)

Keywords ``and`` / ``or`` / ``of`` are case-insensitive; attributes may
contain letters, digits, ``_ : . -``.  The paper notes BSW07 does not
support NOT; neither do we (the standard workaround — a complementary
attribute — is available at the application layer).

As the paper observes (§3.2), **the policy is not hidden**: it travels in
the clear with the ciphertext.  The middleware therefore only puts
"safe to disclose" attributes in policies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import PolicyError

__all__ = ["PolicyNode", "parse_policy", "policy_to_string"]


@dataclass(frozen=True)
class PolicyNode:
    """One node of a policy tree.

    A leaf has ``attribute`` set and no children.  A gate has ``threshold``
    ``k`` and ``children`` (satisfied when ≥ k children are satisfied).
    """

    attribute: str | None = None
    threshold: int = 0
    children: tuple["PolicyNode", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.is_leaf:
            if self.threshold or self.children:
                raise PolicyError("leaf nodes cannot carry threshold/children")
        else:
            if not self.children:
                raise PolicyError("gate nodes need at least one child")
            if not 1 <= self.threshold <= len(self.children):
                raise PolicyError(
                    f"threshold {self.threshold} out of range for {len(self.children)} children"
                )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def leaf(cls, attribute: str) -> "PolicyNode":
        return cls(attribute=attribute)

    @classmethod
    def gate(cls, threshold: int, children: list["PolicyNode"]) -> "PolicyNode":
        return cls(attribute=None, threshold=threshold, children=tuple(children))

    @classmethod
    def and_(cls, *children: "PolicyNode") -> "PolicyNode":
        return cls.gate(len(children), list(children))

    @classmethod
    def or_(cls, *children: "PolicyNode") -> "PolicyNode":
        return cls.gate(1, list(children))

    # -- structure --------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.attribute is not None

    def leaves(self) -> list["PolicyNode"]:
        """All leaves in deterministic (left-to-right) order."""
        if self.is_leaf:
            return [self]
        result: list[PolicyNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def attributes(self) -> set[str]:
        return {leaf.attribute for leaf in self.leaves()}

    # -- satisfaction --------------------------------------------------------------

    def satisfied_by(self, attributes: set[str]) -> bool:
        if self.is_leaf:
            return self.attribute in attributes
        hits = sum(1 for child in self.children if child.satisfied_by(attributes))
        return hits >= self.threshold

    def satisfying_children(self, attributes: set[str]) -> list[int]:
        """1-based indices of exactly ``threshold`` satisfied children.

        Used by CP-ABE decryption to prune the recursion; raises
        :class:`PolicyError` on a leaf or when unsatisfied.
        """
        if self.is_leaf:
            raise PolicyError("satisfying_children on a leaf")
        picked = [
            index
            for index, child in enumerate(self.children, start=1)
            if child.satisfied_by(attributes)
        ]
        if len(picked) < self.threshold:
            raise PolicyError("gate not satisfied")
        return picked[: self.threshold]

    def __str__(self) -> str:
        return policy_to_string(self)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<word>[A-Za-z0-9_:.\-]+))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PolicyError(f"unexpected character at position {pos}: {text[pos]!r}")
        pos = match.end()
        for name in ("lparen", "rparen", "comma", "word"):
            value = match.group(name)
            if value is not None:
                tokens.append(value)
                break
    return tokens


class _Parser:
    """Recursive-descent parser for the policy grammar.

    ``expr := term (('and'|'or') term)*`` with equal-operator folding —
    mixing ``and`` and ``or`` at one level without parentheses is rejected
    to avoid silent precedence surprises.
    """

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> PolicyNode:
        node = self._expr()
        if self._pos != len(self._tokens):
            raise PolicyError(f"trailing tokens after policy: {self._tokens[self._pos:]}")
        return node

    # -- grammar -------------------------------------------------------------

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of policy expression")
        self._pos += 1
        return token

    def _expr(self) -> PolicyNode:
        children = [self._term()]
        operator: str | None = None
        while True:
            token = self._peek()
            if token is None or token.lower() not in ("and", "or"):
                break
            word = self._next().lower()
            if operator is None:
                operator = word
            elif word != operator:
                raise PolicyError(
                    "mixing 'and' and 'or' without parentheses is ambiguous; add parentheses"
                )
            children.append(self._term())
        if len(children) == 1:
            return children[0]
        threshold = len(children) if operator == "and" else 1
        return PolicyNode.gate(threshold, children)

    def _term(self) -> PolicyNode:
        token = self._next()
        if token == "(":
            node = self._expr()
            if self._next() != ")":
                raise PolicyError("expected ')'")
            return node
        if token == ")" or token == ",":
            raise PolicyError(f"unexpected {token!r}")
        if token.isdigit():
            # threshold gate: INT of ( expr , expr , ... )
            threshold = int(token)
            if self._next().lower() != "of":
                raise PolicyError("expected 'of' after threshold count")
            if self._next() != "(":
                raise PolicyError("expected '(' after 'of'")
            children = [self._expr()]
            while self._peek() == ",":
                self._next()
                children.append(self._expr())
            if self._next() != ")":
                raise PolicyError("expected ')' closing threshold gate")
            if not 1 <= threshold <= len(children):
                raise PolicyError(
                    f"threshold {threshold} invalid for {len(children)} alternatives"
                )
            return PolicyNode.gate(threshold, children)
        if token.lower() in ("and", "or", "of"):
            raise PolicyError(f"keyword {token!r} cannot be an attribute")
        return PolicyNode.leaf(token)


def parse_policy(text: str | PolicyNode) -> PolicyNode:
    """Parse a policy expression (idempotent on already-built trees)."""
    if isinstance(text, PolicyNode):
        return text
    tokens = _tokenize(text)
    if not tokens:
        raise PolicyError("empty policy expression")
    return _Parser(tokens).parse()


def policy_to_string(node: PolicyNode) -> str:
    """Render a policy tree back to canonical expression text."""
    if node.is_leaf:
        return node.attribute
    rendered = [policy_to_string(child) for child in node.children]
    wrapped = [f"({text})" if not child.is_leaf else text for child, text in zip(node.children, rendered)]
    if node.threshold == len(node.children):
        return " and ".join(wrapped)
    if node.threshold == 1:
        return " or ".join(wrapped)
    return f"{node.threshold} of ({', '.join(rendered)})"
