"""Hybrid (KEM-DEM) CP-ABE for byte payloads.

P3S publishes ``CP-ABE-encrypted(GUID, payload)`` (paper §4.3).  Like the
original cpabe toolkit — which ABE-wraps an AES session key — we encrypt a
random GT element under the policy, derive a symmetric key from it, and
seal the actual bytes with :class:`~repro.crypto.symmetric.SecretBox`.

The ciphertext size follows the paper's model ``c_A = 2·V·k + m`` (V policy
attributes, k security parameter, m payload bytes) up to the constant AEAD
overhead; :func:`repro.abe.serialize.cpabe_ciphertext_size` reports it
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.group import PairingGroup
from ..crypto.symmetric import SecretBox
from ..errors import DecryptionError
from .bsw07 import CPABE, CPABECiphertext, CPABEPublicKey, CPABESecretKey
from .policy import PolicyNode

__all__ = ["HybridCPABE", "HybridCiphertext"]


@dataclass(frozen=True)
class HybridCiphertext:
    """ABE-wrapped session key + AEAD-sealed payload."""

    kem: CPABECiphertext
    sealed: bytes


class HybridCPABE:
    """KEM-DEM wrapper over :class:`CPABE` for arbitrary byte strings."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self.abe = CPABE(group)

    def setup(self):
        return self.abe.setup()

    def keygen(self, master, attributes: set[str]) -> CPABESecretKey:
        return self.abe.keygen(master, attributes)

    def encrypt(
        self, public: CPABEPublicKey, payload: bytes, policy: PolicyNode | str
    ) -> HybridCiphertext:
        session_element = self.group.random_gt()
        kem = self.abe.encrypt(public, session_element, policy)
        key = self.group.gt_to_key(session_element, "cpabe-dem")
        sealed = SecretBox(key).seal(payload)
        return HybridCiphertext(kem=kem, sealed=sealed)

    def decrypt(self, key: CPABESecretKey, ciphertext: HybridCiphertext) -> bytes:
        session_element = self.abe.decrypt(key, ciphertext.kem)
        dem_key = self.group.gt_to_key(session_element, "cpabe-dem")
        try:
            return SecretBox(dem_key).open(ciphertext.sealed)
        except DecryptionError as exc:
            raise DecryptionError(f"CP-ABE DEM failed: {exc}") from exc
