"""Ciphertext-Policy Attribute-Based Encryption (Bethencourt-Sahai-Waters '07).

This is the construction P3S uses for payload confidentiality (paper §3.2
and [8, 15]): the publisher encrypts under a *policy tree* over attributes;
the ARA gives each client a secret key for its *attribute set*; decryption
succeeds iff the attributes satisfy the policy.  Collusion resistance comes
from the per-key randomizer ``r`` baked into every key component.

Algorithms (notation as in the paper's §3.2 definition):

* ``Setup() → (PP, MSK)`` — ``PP = (g, h=g^β, f=g^{1/β}, ê(g,g)^α)``,
  ``MSK = (β, g^α)``.
* ``KeyGen(MSK, S) → SK`` — ``D = g^{(α+r)/β}``; per attribute ``j``:
  ``D_j = g^r·H(j)^{r_j}``, ``D'_j = g^{r_j}``.
* ``Encrypt(PP, M, A) → CT_A`` — shares ``s`` down the tree with one
  degree-(k−1) polynomial per gate; ``C̃ = M·ê(g,g)^{αs}``, ``C = h^s``,
  per leaf ``y``: ``C_y = g^{q_y(0)}``, ``C'_y = H(att(y))^{q_y(0)}``.
* ``Decrypt(PP, SK, CT)`` — recursive pairing evaluation with Lagrange
  recombination at each gate.

Messages are GT elements; byte payloads go through
:mod:`repro.abe.hybrid` (KEM-DEM), exactly like the cpabe toolkit wraps an
AES session key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.curve import Point
from ..crypto.field import Fq2
from ..crypto.group import PairingGroup
from ..errors import PolicyError, PolicyNotSatisfiedError
from ..obs.profile import instrument
from .policy import PolicyNode, parse_policy

__all__ = ["CPABE", "CPABEPublicKey", "CPABEMasterKey", "CPABESecretKey", "CPABECiphertext"]


@dataclass(frozen=True)
class CPABEPublicKey:
    """Public parameters PP."""

    g: Point
    h: Point  # g^β
    f: Point  # g^{1/β} (used for key delegation)
    e_gg_alpha: Fq2  # ê(g, g)^α


@dataclass(frozen=True)
class CPABEMasterKey:
    """Master secret MSK — held only by the ARA."""

    beta: int
    g_alpha: Point  # g^α


@dataclass(frozen=True)
class CPABESecretKey:
    """A client key for attribute set ``attributes``."""

    attributes: frozenset[str]
    d: Point  # g^{(α+r)/β}
    components: dict[str, tuple[Point, Point]]  # j -> (D_j, D'_j)


@dataclass(frozen=True)
class CPABECiphertext:
    """CT_A: the policy travels in the clear (paper §3.2)."""

    policy: PolicyNode
    c_tilde: Fq2  # M · ê(g,g)^{αs}
    c: Point  # h^s
    leaf_components: tuple[tuple[str, Point, Point], ...]  # (att(y), C_y, C'_y) in leaf order


class CPABE:
    """The BSW07 scheme over a :class:`PairingGroup`."""

    def __init__(self, group: PairingGroup):
        self.group = group

    # -- Setup ---------------------------------------------------------------

    def setup(self) -> tuple[CPABEPublicKey, CPABEMasterKey]:
        group = self.group
        alpha = group.random_zr()
        beta = group.random_zr()
        g = group.generator
        public = CPABEPublicKey(
            g=g,
            h=g * beta,
            f=g * pow(beta, -1, group.order),
            e_gg_alpha=group.gt_generator**alpha,
        )
        master = CPABEMasterKey(beta=beta, g_alpha=g * alpha)
        return public, master

    # -- KeyGen ---------------------------------------------------------------

    @instrument("abe.keygen")
    def keygen(self, master: CPABEMasterKey, attributes: set[str]) -> CPABESecretKey:
        if not attributes:
            raise PolicyError("attribute set must be non-empty")
        group = self.group
        r = group.random_zr()
        beta_inv = pow(master.beta, -1, group.order)
        d = (master.g_alpha + group.generator * r) * beta_inv
        components: dict[str, tuple[Point, Point]] = {}
        g_r = group.generator * r
        for attribute in sorted(attributes):
            r_j = group.random_zr()
            d_j = g_r + self._hash_attribute(attribute) * r_j
            d_j_prime = group.generator * r_j
            components[attribute] = (d_j, d_j_prime)
        return CPABESecretKey(frozenset(attributes), d, components)

    # -- Delegate (BSW07 §4.2) ---------------------------------------------------

    def delegate(
        self, public: CPABEPublicKey, key: CPABESecretKey, subset: set[str]
    ) -> CPABESecretKey:
        """Derive a key for ``subset ⊆ attributes`` without the master key.

        Part of the original BSW07 scheme: a client can hand a colleague a
        strictly weaker key.  The derived key is re-randomized (fresh
        ``r̃``), so delegated keys collude with neither their parent nor
        each other.
        """
        if not subset:
            raise PolicyError("delegated attribute set must be non-empty")
        missing = subset - set(key.attributes)
        if missing:
            raise PolicyError(f"cannot delegate attributes not held: {sorted(missing)}")
        group = self.group
        r_tilde = group.random_zr()
        d = key.d + public.f * r_tilde  # g^{(α+r+r̃)/β}
        g_r_tilde = group.generator * r_tilde
        components: dict[str, tuple[Point, Point]] = {}
        for attribute in sorted(subset):
            r_k = group.random_zr()
            d_j, d_j_prime = key.components[attribute]
            components[attribute] = (
                d_j + g_r_tilde + self._hash_attribute(attribute) * r_k,
                d_j_prime + group.generator * r_k,
            )
        return CPABESecretKey(frozenset(subset), d, components)

    # -- Encrypt -----------------------------------------------------------------

    @instrument("abe.encrypt")
    def encrypt(self, public: CPABEPublicKey, message: Fq2, policy: PolicyNode | str) -> CPABECiphertext:
        group = self.group
        tree = parse_policy(policy)
        s = group.random_zr()
        shares = self._share_secret(tree, s)
        leaf_components = tuple(
            (leaf.attribute, group.generator * share, self._hash_attribute(leaf.attribute) * share)
            for leaf, share in zip(tree.leaves(), shares)
        )
        return CPABECiphertext(
            policy=tree,
            c_tilde=message * (public.e_gg_alpha**s),
            c=public.h * s,
            leaf_components=leaf_components,
        )

    # -- Decrypt ------------------------------------------------------------------

    @instrument("abe.decrypt")
    def decrypt(self, key: CPABESecretKey, ciphertext: CPABECiphertext) -> Fq2:
        """Recover the GT message; raises :class:`PolicyNotSatisfiedError`."""
        attributes = set(key.attributes)
        if not ciphertext.policy.satisfied_by(attributes):
            raise PolicyNotSatisfiedError(
                f"attributes {sorted(attributes)} do not satisfy policy {ciphertext.policy}"
            )
        leaf_map = self._leaf_component_map(ciphertext)
        a = self._decrypt_node(ciphertext.policy, key, attributes, leaf_map, counter=[0])
        # ê(C, D) = ê(g,g)^{s(α+r)}; A = ê(g,g)^{rs}  →  M = C̃·A / ê(C, D)
        e_c_d = self.group.pair(ciphertext.c, key.d)
        return ciphertext.c_tilde * a * e_c_d.inverse()

    # -- internals -------------------------------------------------------------------

    def _hash_attribute(self, attribute: str) -> Point:
        return self.group.hash_to_g1("cpabe-attr:" + attribute)

    def _share_secret(self, node: PolicyNode, secret: int) -> list[int]:
        """Shamir-share ``secret`` down the tree; returns per-leaf shares in leaf order."""
        group = self.group
        if node.is_leaf:
            return [secret]
        # polynomial q with q(0) = secret, degree = threshold − 1
        coefficients = [secret] + [group.random_zr(nonzero=False) for _ in range(node.threshold - 1)]
        shares: list[int] = []
        for index, child in enumerate(node.children, start=1):
            value = self._eval_poly(coefficients, index)
            shares.extend(self._share_secret(child, value))
        return shares

    def _eval_poly(self, coefficients: list[int], x: int) -> int:
        order = self.group.order
        result = 0
        for coefficient in reversed(coefficients):
            result = (result * x + coefficient) % order
        return result

    def _leaf_component_map(self, ciphertext: CPABECiphertext) -> list[tuple[str, Point, Point]]:
        leaves = ciphertext.policy.leaves()
        if len(leaves) != len(ciphertext.leaf_components):
            raise PolicyError("ciphertext leaf components do not match policy shape")
        return list(ciphertext.leaf_components)

    def _decrypt_node(
        self,
        node: PolicyNode,
        key: CPABESecretKey,
        attributes: set[str],
        leaf_map: list[tuple[str, Point, Point]],
        counter: list[int],
    ) -> Fq2:
        """Return ê(g,g)^{r·q_node(0)} for a satisfied subtree.

        ``counter`` tracks the traversal position into ``leaf_map`` so each
        leaf consumes its own ciphertext components even when attributes repeat.
        """
        group = self.group
        if node.is_leaf:
            attribute, c_y, c_y_prime = leaf_map[counter[0]]
            counter[0] += 1
            d_j, d_j_prime = key.components[attribute]
            # ê(D_j, C_y) / ê(D'_j, C'_y) = ê(g,g)^{r·q_y(0)}
            return group.multi_pair([(d_j, c_y), (-d_j_prime, c_y_prime)])
        picked = set(node.satisfying_children(attributes))
        factors: list[tuple[int, Fq2]] = []
        for index, child in enumerate(node.children, start=1):
            if index in picked:
                factors.append((index, self._decrypt_node(child, key, attributes, leaf_map, counter)))
            else:
                self._skip_leaves(child, counter)
        indices = [index for index, _ in factors]
        result = Fq2.one(group.params.q)
        for index, value in factors:
            result = result * (value ** self._lagrange(index, indices))
        return result

    def _skip_leaves(self, node: PolicyNode, counter: list[int]) -> None:
        counter[0] += len(node.leaves())

    def _lagrange(self, i: int, indices: list[int]) -> int:
        """Lagrange coefficient Δ_{i,S}(0) mod r."""
        order = self.group.order
        numerator, denominator = 1, 1
        for j in indices:
            if j == i:
                continue
            numerator = numerator * (-j) % order
            denominator = denominator * (i - j) % order
        return numerator * pow(denominator, -1, order) % order
