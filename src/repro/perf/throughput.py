"""Throughput models (paper §6.2, Fig. 7 decomposition, Figs. 9-10).

Throughput is the minimum over per-stage publication rates.

Baseline::

    r^b = min(r1^b, r2^b)
    r1^b = z / (N_s × t_match)        broker matching (z threads)
    r2^b = ℬ / (m × N_s × f)          broker egress to matching subscribers

P3S::

    r^p = min(r1^p, r2^p, r3^p)
    r1^p = ℬ / (P_E × N_s)            DS broadcast of encrypted metadata
    r2^p = W / t_PBE                  per-subscriber PBE matching (W threads)
    r3^p = ℬ / (c_A × N_s × f)        RS egress of payloads

Sizes are bytes and ℬ bits/s, so every ``size × rate`` term goes through
``ser`` (the ×8).

**Hierarchical dissemination** (§6.2: "this issue can be addressed by
reconfiguring the P3S architecture to use hierarchical dissemination"):
with ``relay_fanout = k`` the DS sends each metadata item to only ``k``
relays, each of which re-serves ≤ ``k`` children, so the per-node
broadcast bottleneck becomes ℬ/(P_E·k) instead of ℬ/(P_E·N_s).
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import ModelParams

__all__ = ["baseline_throughput", "p3s_throughput", "throughput_ratio", "ThroughputBreakdown"]


@dataclass(frozen=True)
class ThroughputBreakdown:
    """Publications/second, with the limiting stage identified."""

    total: float
    bottleneck: str
    stages: dict[str, float]


def baseline_throughput(payload_bytes: float, p: ModelParams) -> ThroughputBreakdown:
    r1 = p.broker_threads / (p.num_subscribers * p.baseline_match_s)
    r2 = 1.0 / (p.match_fraction * p.num_subscribers * p.ser(payload_bytes))
    stages = {"r1_match": r1, "r2_egress": r2}
    bottleneck = min(stages, key=stages.get)
    return ThroughputBreakdown(total=stages[bottleneck], bottleneck=bottleneck, stages=stages)


def p3s_throughput(
    payload_bytes: float, p: ModelParams, relay_fanout: int | None = None
) -> ThroughputBreakdown:
    c_a = p.cpabe_ciphertext_bytes(payload_bytes)
    fanout = p.num_subscribers if relay_fanout is None else min(relay_fanout, p.num_subscribers)
    r1 = 1.0 / (fanout * p.ser(p.encrypted_metadata_bytes))
    r2 = p.subscriber_match_threads / p.pbe_match_s
    r3 = 1.0 / (p.match_fraction * p.num_subscribers * p.ser(c_a))
    stages = {"r1_ds_broadcast": r1, "r2_pbe_match": r2, "r3_rs_egress": r3}
    bottleneck = min(stages, key=stages.get)
    return ThroughputBreakdown(total=stages[bottleneck], bottleneck=bottleneck, stages=stages)


def throughput_ratio(
    payload_bytes: float, p: ModelParams, relay_fanout: int | None = None
) -> float:
    """Figs. 9(b)/10(b): P3S throughput relative to the baseline."""
    return (
        p3s_throughput(payload_bytes, p, relay_fanout=relay_fanout).total
        / baseline_throughput(payload_bytes, p).total
    )
