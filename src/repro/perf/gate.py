"""`repro perf gate` — the enforceable perf trajectory.

The committed BENCH_*.json history (read through
:mod:`repro.perf.bench`) records what this repository's hot paths
achieved when each PR landed.  The gate turns those files from
documentation into a check, in two layers:

* **smoke** — every history record's absolute ``floor``/``ceiling``
  bounds must hold.  These are machine-independent claims ("the
  precomputed match path is ≥1.3× the naive one", "1%-keep tracing
  recovers ≥90% of tracing-off"), so they are checkable anywhere —
  including CI runners that never ran the original bench;
* **fresh** — quick re-measurements of the machine-independent *ratio*
  metrics (match-path speedups, fixed-base micro, tracing recovery,
  profiler overhead) compared against the committed baselines with
  noise-aware thresholds: each record's ``tolerance`` (or its
  unit-class default) widens the acceptance band, because a laptop and
  a CI container disagree on absolutes but should agree on ratios.

A fresh probe failing means the current tree regressed a hot path the
history says it once had; a smoke failure means the committed record
itself no longer states a truth.  Both print the same report table and
exit non-zero through the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .bench import BenchRecord, load_history

__all__ = ["GateCheck", "GateReport", "run_gate", "smoke_checks", "fresh_probes", "format_gate"]


@dataclass
class GateCheck:
    """One gate judgement: a record against its bound or baseline."""

    name: str
    kind: str  # "floor" | "ceiling" | "baseline"
    baseline: float  # the bound or the committed value
    value: float  # the value being judged (fresh, or committed for smoke)
    passed: bool
    detail: str = ""


@dataclass
class GateReport:
    checks: list[GateCheck]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [check for check in self.checks if not check.passed]


def smoke_checks(history: dict[str, BenchRecord]) -> list[GateCheck]:
    """Absolute floor/ceiling validation of the committed history."""
    checks: list[GateCheck] = []
    for name, record in sorted(history.items()):
        if record.floor is not None:
            checks.append(
                GateCheck(
                    name,
                    "floor",
                    record.floor,
                    record.value,
                    record.value >= record.floor,
                    f"{record.source}: committed {record.value:.3f} vs floor {record.floor:.3f}",
                )
            )
        if record.ceiling is not None:
            checks.append(
                GateCheck(
                    name,
                    "ceiling",
                    record.ceiling,
                    record.value,
                    record.value <= record.ceiling,
                    f"{record.source}: committed {record.value:.3f} vs ceiling {record.ceiling:.3f}",
                )
            )
    return checks


def baseline_checks(
    history: dict[str, BenchRecord], fresh: dict[str, float]
) -> list[GateCheck]:
    """Fresh values against committed baselines, tolerance-widened.

    ``higher``-is-better passes when
    ``fresh >= baseline * (1 - tolerance)``; ``lower`` mirrors.  Fresh
    values also face the record's absolute floor/ceiling — a probe that
    beats a stale baseline but breaks the floor still fails.
    """
    checks: list[GateCheck] = []
    for name, value in sorted(fresh.items()):
        record = history.get(name)
        if record is None:
            checks.append(
                GateCheck(name, "baseline", float("nan"), value, True, "no committed baseline (informational)")
            )
            continue
        tolerance = record.effective_tolerance()
        if record.direction == "lower":
            bound = record.value * (1.0 + tolerance)
            ok = value <= bound
            relation = f"fresh {value:.3f} <= {bound:.3f} ({record.value:.3f} +{tolerance:.0%})"
        else:
            bound = record.value * (1.0 - tolerance)
            ok = value >= bound
            relation = f"fresh {value:.3f} >= {bound:.3f} ({record.value:.3f} -{tolerance:.0%})"
        checks.append(GateCheck(name, "baseline", record.value, value, ok, relation))
        if record.floor is not None:
            checks.append(
                GateCheck(
                    name,
                    "floor",
                    record.floor,
                    value,
                    value >= record.floor,
                    f"fresh {value:.3f} vs floor {record.floor:.3f}",
                )
            )
        if record.ceiling is not None:
            checks.append(
                GateCheck(
                    name,
                    "ceiling",
                    record.ceiling,
                    value,
                    value <= record.ceiling,
                    f"fresh {value:.3f} vs ceiling {record.ceiling:.3f}",
                )
            )
    return checks


# -- fresh probes ---------------------------------------------------------------
#
# Each probe re-measures one machine-independent ratio cheaply (seconds,
# not minutes).  Probes return {record name: fresh value} using the same
# names the history carries, so baseline_checks can join them.


def probe_match_speedups(vector_bits: int = 8, tokens: int = 8, publications: int = 3) -> dict[str, float]:
    """Re-measure the PR-2 precomputed-match and fixed-base speedups."""
    from ..crypto.curve import clear_fixed_base_cache, set_fixed_base_enabled
    from ..crypto.group import PairingGroup
    from ..par import MatchPool
    from ..pbe.hve import HVE
    from ..pbe.serialize import serialize_hve_ciphertext, serialize_hve_token

    group = PairingGroup("TOY")
    hve = HVE(group)
    public, master = hve.setup(vector_bits)
    x = [i % 2 for i in range(vector_bits)]
    ciphertexts = [
        serialize_hve_ciphertext(group, hve.encrypt(public, x, bytes([i]) * 16))
        for i in range(publications)
    ]
    token_blobs = []
    for t in range(tokens):
        y: list[int | None] = [None] * vector_bits
        for j in range(4):
            position = (t + j) % vector_bits
            y[position] = x[position] ^ (1 if (t % 2 and j == 0) else 0)
        token_blobs.append(serialize_hve_token(group, hve.gen_token(master, y)))

    from ..pbe.serialize import deserialize_hve_ciphertext, deserialize_hve_token

    naive_hve = HVE(group, precompute=False, match_cache_size=0)
    token_objs = [deserialize_hve_token(group, blob) for blob in token_blobs]
    start = time.perf_counter()
    naive_results = [
        [naive_hve.query(token, deserialize_hve_ciphertext(group, ct)) for token in token_objs]
        for ct in ciphertexts
    ]
    naive_s = time.perf_counter() - start

    pool = MatchPool(group, workers=0)
    pool.start()
    pool.match(ciphertexts[0], token_blobs)  # warm token precomputation
    try:
        start = time.perf_counter()
        pre_results = [pool.match(ct, token_blobs) for ct in ciphertexts]
        pre_s = time.perf_counter() - start
    finally:
        pool.close()
    assert pre_results == naive_results, "precomputed match path diverged"

    import random

    rng = random.Random(0xFB)
    scalars = [rng.randrange(1, group.order) for _ in range(32)]
    g = group.generator
    set_fixed_base_enabled(False)
    start = time.perf_counter()
    for k in scalars:
        g * k
    windowed_s = time.perf_counter() - start
    set_fixed_base_enabled(True)
    clear_fixed_base_cache()
    g * scalars[0]  # build the comb outside the timed region
    start = time.perf_counter()
    for k in scalars:
        g * k
    fixed_s = time.perf_counter() - start

    return {
        "match_fanout.precompute_speedup": naive_s / pre_s,
        "match_fanout.fixed_base_speedup": windowed_s / fixed_s,
    }


def probe_obs_recovery(messages: int = 200, repeats: int = 3) -> dict[str, float]:
    """Re-measure the PR-9 sampled-tracing throughput recovery."""
    import hashlib

    from ..obs.sampling import TraceSampler
    from ..obs.tracing import Tracer

    payload = b"\x5a" * 2048

    def work() -> int:
        digest = payload
        for _ in range(120):
            digest = hashlib.sha256(digest).digest() + payload
        return digest[0]

    def run(tracer: Tracer | None) -> float:
        start = time.perf_counter()
        for _ in range(messages):
            if tracer is None:
                work()
                continue
            with tracer.span("publish", "pub"):
                with tracer.span("ds.fan_out", "ds"):
                    work()
            tracer.drain_finished()
        return time.perf_counter() - start

    best_off = min(run(None) for _ in range(repeats))
    best_sampled = min(
        run(Tracer(capacity=4096, sampler=TraceSampler(0.01, seed=9)))
        for _ in range(repeats)
    )
    return {"obs_overhead.sampled_recovery": min(1.0, best_off / best_sampled)}


def probe_profiler_overhead(publications: int = 15) -> dict[str, float]:
    """The new claim this PR commits to: deterministic profiling is
    within noise of profiling-off on the seeded demo workload
    (``prof.det_recovery`` — throughput with the sampler attached over
    throughput without, interleaved best-of-2)."""
    from ..obs.observability import Observability
    from ..obs.prof.sampler import DeterministicSampler
    from ..obs.prof.workload import run_demo_workload

    def run(with_profiler: bool) -> float:
        obs = Observability()
        if with_profiler:
            obs.profiler = DeterministicSampler(every=8, obs=obs)
        start = time.perf_counter()
        run_demo_workload(publications, seed=3, obs=obs)
        return time.perf_counter() - start

    best = {False: float("inf"), True: float("inf")}
    for _ in range(2):
        for flag in (False, True):  # interleaved: drift hits both
            best[flag] = min(best[flag], run(flag))
    return {"prof.det_recovery": min(1.0, best[False] / best[True])}


PROBES: dict[str, Callable[[], dict[str, float]]] = {
    "match": probe_match_speedups,
    "obs": probe_obs_recovery,
    "prof": probe_profiler_overhead,
}


def fresh_probes(only: list[str] | None = None) -> dict[str, float]:
    """Run the fresh probes (all, or the named subset)."""
    fresh: dict[str, float] = {}
    for name, probe in PROBES.items():
        if only and name not in only:
            continue
        fresh.update(probe())
    return fresh


def run_gate(
    root: str = ".",
    smoke: bool = False,
    only: list[str] | None = None,
    history: dict[str, BenchRecord] | None = None,
    fresh: dict[str, float] | None = None,
) -> GateReport:
    """The full gate: smoke checks always, fresh probes unless ``smoke``.

    ``history``/``fresh`` injection exists for tests (synthetically
    regressed histories, canned probe values).
    """
    history = history if history is not None else load_history(root)
    checks = smoke_checks(history)
    if not smoke:
        fresh = fresh if fresh is not None else fresh_probes(only)
        checks.extend(baseline_checks(history, fresh))
    return GateReport(checks)


def format_gate(report: GateReport) -> str:
    from .report import format_table

    rows = [
        [
            "PASS" if check.passed else "FAIL",
            check.name,
            check.kind,
            check.detail,
        ]
        for check in report.checks
    ]
    table = format_table(["", "metric", "check", "detail"], rows, title="perf gate")
    verdict = (
        "perf gate: PASS"
        if report.passed
        else f"perf gate: FAIL ({len(report.failures)} of {len(report.checks)} checks)"
    )
    return table + "\n" + verdict
