"""Calibration: measure the model constants from *our* primitives.

The paper feeds its analytic models "parameter values obtained from the
current prototype".  This module does the same against this repository's
own crypto: it times PBE encrypt/match/token-gen, CP-ABE encrypt/decrypt
and PKE operations, and takes exact ciphertext sizes from the real
serializers.  The results plug into :class:`~repro.perf.params.ModelParams`
(for the analytic models) and
:class:`~repro.core.config.ComputeTimings` (for end-to-end simulations),
making the whole reproduction self-consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..abe.hybrid import HybridCPABE
from ..abe.serialize import serialize_hybrid
from ..core.config import ComputeTimings
from ..crypto.group import PairingGroup
from ..crypto.pke import PKEKeyPair
from ..pbe.hve import HVE
from ..pbe.serialize import hve_token_size, serialize_hve_ciphertext
from .params import ModelParams

__all__ = ["CalibrationResult", "calibrate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Measured constants for one parameter set / metadata-space shape."""

    param_set: str
    vector_bits: int
    policy_attributes: int
    pairing_s: float
    pbe_encrypt_s: float
    pbe_match_s: float
    pbe_token_gen_s: float
    cpabe_encrypt_s: float
    cpabe_decrypt_s: float
    pke_op_s: float
    encrypted_metadata_bytes: int
    cpabe_overhead_bytes: int
    token_bytes: int
    # First query of a token against a ciphertext: includes the token's
    # Miller-loop precomputation (amortized away on every later query —
    # pbe_match_s is that warm steady-state cost).
    pbe_match_cold_s: float = 0.0

    def as_model_params(self, base: ModelParams | None = None) -> ModelParams:
        """Table 1 with our measured values substituted."""
        base = base or ModelParams()
        return base.with_(
            pbe_encrypt_s=self.pbe_encrypt_s,
            pbe_match_s=self.pbe_match_s,
            cpabe_encrypt_s=self.cpabe_encrypt_s,
            cpabe_decrypt_s=self.cpabe_decrypt_s,
            encrypted_metadata_bytes=self.encrypted_metadata_bytes,
        )

    def as_compute_timings(self) -> ComputeTimings:
        """Timings for end-to-end simulations."""
        return ComputeTimings(
            pbe_encrypt=self.pbe_encrypt_s,
            pbe_match=self.pbe_match_s,
            pbe_token_gen=self.pbe_token_gen_s,
            cpabe_encrypt=self.cpabe_encrypt_s,
            cpabe_decrypt=self.cpabe_decrypt_s,
            pke_op=self.pke_op_s,
        )


def _time(fn, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate(
    param_set: str = "TOY",
    vector_bits: int = 40,
    policy_attributes: int = 10,
    repetitions: int = 3,
    payload_bytes: int = 1024,
) -> CalibrationResult:
    """Measure every model constant at the given parameter set.

    ``vector_bits`` is the PBE vector length (Table 1: P = 40 bits);
    ``policy_attributes`` is V.  Uses best-of-``repetitions`` to damp
    scheduling noise.
    """
    group = PairingGroup(param_set)

    # pairing
    p1, p2 = group.random_g1(), group.random_g1()
    pairing_s = _time(lambda: group.pair(p1, p2), repetitions)

    # PBE / HVE
    hve = HVE(group)
    hve_public, hve_master = hve.setup(vector_bits)
    attribute_vector = [i % 2 for i in range(vector_bits)]
    interest_vector: list[int | None] = [
        (i % 2 if i < vector_bits // 2 else None) for i in range(vector_bits)
    ]
    guid = b"\x42" * 16
    pbe_encrypt_s = _time(
        lambda: hve.encrypt(hve_public, attribute_vector, guid), repetitions
    )
    ciphertext = hve.encrypt(hve_public, attribute_vector, guid)
    pbe_token_gen_s = _time(
        lambda: hve.gen_token(hve_master, interest_vector), repetitions
    )
    token = hve.gen_token(hve_master, interest_vector)

    def _match_warm():
        # drop the result memo so repetitions measure a real evaluation
        # (token precomputation stays warm — the steady-state cost)
        hve.clear_match_memo()
        hve.query(token, ciphertext)

    def _match_cold():
        HVE(group).query(token, ciphertext)  # fresh caches every time

    _match_warm()  # pay the one-time token precomputation before timing
    pbe_match_s = _time(_match_warm, repetitions)
    pbe_match_cold_s = _time(_match_cold, repetitions)
    encrypted_metadata_bytes = len(serialize_hve_ciphertext(group, ciphertext))

    # CP-ABE (V-attribute AND policy — the Table 1 shape)
    cpabe = HybridCPABE(group)
    cpabe_public, cpabe_master = cpabe.setup()
    attributes = {f"a{i}" for i in range(policy_attributes)}
    policy = " and ".join(sorted(attributes))
    key = cpabe.keygen(cpabe_master, attributes)
    payload = b"\x07" * payload_bytes
    cpabe_encrypt_s = _time(
        lambda: cpabe.encrypt(cpabe_public, payload, policy), repetitions
    )
    abe_ciphertext = cpabe.encrypt(cpabe_public, payload, policy)
    cpabe_decrypt_s = _time(lambda: cpabe.decrypt(key, abe_ciphertext), repetitions)
    cpabe_overhead_bytes = len(serialize_hybrid(group, abe_ciphertext)) - payload_bytes

    # PKE
    pke = PKEKeyPair(group)
    pke_op_s = _time(lambda: pke.public.encrypt(b"x" * 64), repetitions)

    return CalibrationResult(
        param_set=param_set,
        vector_bits=vector_bits,
        policy_attributes=policy_attributes,
        pairing_s=pairing_s,
        pbe_encrypt_s=pbe_encrypt_s,
        pbe_match_s=pbe_match_s,
        pbe_token_gen_s=pbe_token_gen_s,
        cpabe_encrypt_s=cpabe_encrypt_s,
        cpabe_decrypt_s=cpabe_decrypt_s,
        pke_op_s=pke_op_s,
        encrypted_metadata_bytes=encrypted_metadata_bytes,
        cpabe_overhead_bytes=cpabe_overhead_bytes,
        token_bytes=hve_token_size(group, vector_bits // 2),
        pbe_match_cold_s=pbe_match_cold_s,
    )
