"""Terminal (ASCII) plots for the figure benches and the CLI.

Log-log line plots good enough to eyeball the Fig. 8-10 shapes without a
plotting stack: each named series gets a marker; collisions show the
later series' marker.
"""

from __future__ import annotations

import math

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@"


def ascii_plot(
    x_values: list[float],
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "payload (bytes)",
    y_label: str = "",
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Render a log-log multi-series line plot as text."""
    if not series:
        raise ValueError("no series to plot")

    def tx(value: float) -> float:
        return math.log10(value) if log_x else value

    def ty(value: float) -> float:
        return math.log10(value) if log_y else value

    xs = [tx(v) for v in x_values]
    all_y = [ty(v) for values in series.values() for v in values if v > 0 or not log_y]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, (ty(v) for v in values)):
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{10 ** y_max:.3g}" if log_y else f"{y_max:.3g}"
    bottom_label = f"{10 ** y_min:.3g}" if log_y else f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}|")
    left = f"{10 ** x_min:.3g}" if log_x else f"{x_min:.3g}"
    right = f"{10 ** x_max:.3g}" if log_x else f"{x_max:.3g}"
    axis = left + " " * (width - len(left) - len(right) + 2) + right
    lines.append(" " * label_width + "  " + axis + f"   {x_label}")
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)
