"""Model parameters — Table 1 of the paper, as a dataclass.

| Symbol   | Meaning                                        | Paper value |
|----------|------------------------------------------------|-------------|
| ℓ        | network latency                                | 45 ms       |
| ℬ        | network bandwidth                              | 10 Mbps     |
| m        | plaintext payload size                         | varying     |
| P        | PBE metadata specification size                | 40 bits     |
| P_E      | PBE-encrypted metadata size                    | 10 KB       |
| c_A      | CP-ABE ciphertext size                         | 2Vk + m     |
| N_s      | number of subscribers                          | 100         |
| f        | fraction of subscribers matching               | 5 %         |
| V        | attributes in the CP-ABE policy                | 10          |
| k        | CP-ABE security parameter                      | 384 bits    |

(The table lists c_A ≈ 0.6·m for the prototype's compressed payloads; the
text derives c_A = 2Vk + m "from theory" — we implement the theoretical
formula and let :mod:`repro.perf.calibrate` substitute exact measured
sizes from our own serializers.)

Prototype-measured compute constants (§6.2 text): PBE encrypt ≈ 30 ms,
PBE match ≈ 38 ms, CP-ABE decrypt ≈ 12 ms, CP-ABE encrypt "fairly fast"
(≈ 3 ms), baseline per-subscription match ≈ 0.05 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelParams", "PAPER_PARAMS", "MESSAGE_SIZES"]

# payload sizes (bytes) on the x-axis of Figs. 8-10: 1 KB .. 100 MB
MESSAGE_SIZES = [
    1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
    1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
]


@dataclass(frozen=True)
class ModelParams:
    """All inputs to the analytic latency/throughput models."""

    # Table 1
    latency_s: float = 0.045  # ℓ
    bandwidth_bps: float = 10_000_000  # ℬ (client links)
    lan_bandwidth_bps: float = 100_000_000  # DS→RS hop (§6.2 text)
    metadata_bits: int = 40  # P
    encrypted_metadata_bytes: int = 10_000  # P_E
    num_subscribers: int = 100  # N_s
    match_fraction: float = 0.05  # f
    policy_attributes: int = 10  # V
    security_parameter_bits: int = 384  # k
    guid_bytes: int = 10  # "G ... is ~10 bytes"

    # measured compute constants (§6.2)
    pbe_encrypt_s: float = 0.030  # enc_P
    pbe_match_s: float = 0.038  # t_PBE
    cpabe_encrypt_s: float = 0.003  # enc_C ("fairly fast")
    cpabe_decrypt_s: float = 0.012  # dec_C
    baseline_match_s: float = 0.00005  # 0.05 ms XPath match

    # hardware threads
    broker_threads: int = 4  # z (baseline broker matching)
    subscriber_match_threads: int = 2  # W ("currently set to 2")

    # -- derived ---------------------------------------------------------------

    def ser(self, num_bytes: float, bandwidth_bps: float | None = None) -> float:
        """Serialization time ser(m) = m/ℬ (m in bytes, ℬ in bits/s)."""
        return (num_bytes * 8) / (bandwidth_bps or self.bandwidth_bps)

    def cpabe_ciphertext_bytes(self, payload_bytes: float) -> float:
        """c_A = 2·V·k + m (text's theoretical estimate)."""
        return 2 * self.policy_attributes * (self.security_parameter_bits // 8) + payload_bytes

    def with_(self, **overrides) -> "ModelParams":
        return replace(self, **overrides)


PAPER_PARAMS = ModelParams()
