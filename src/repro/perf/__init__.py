"""Performance models, calibration, and reporting (paper §6.2)."""

from .params import MESSAGE_SIZES, PAPER_PARAMS, ModelParams
from .latency import LatencyBreakdown, baseline_latency, latency_ratio, p3s_latency
from .throughput import (
    ThroughputBreakdown,
    baseline_throughput,
    p3s_throughput,
    throughput_ratio,
)
from .calibrate import CalibrationResult, calibrate
from .report import format_rate, format_seconds, format_size, format_table, series_table

__all__ = [
    "ModelParams",
    "PAPER_PARAMS",
    "MESSAGE_SIZES",
    "baseline_latency",
    "p3s_latency",
    "latency_ratio",
    "LatencyBreakdown",
    "baseline_throughput",
    "p3s_throughput",
    "throughput_ratio",
    "ThroughputBreakdown",
    "calibrate",
    "CalibrationResult",
    "format_table",
    "format_size",
    "format_seconds",
    "format_rate",
    "series_table",
]
