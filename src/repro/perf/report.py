"""Plain-text reporting helpers for the benchmark harness.

Every table/figure bench prints the same rows or series the paper reports,
via these formatters, so ``pytest benchmarks/ --benchmark-only -s`` yields
a readable reproduction transcript (also captured into EXPERIMENTS.md).
"""

from __future__ import annotations

__all__ = ["format_table", "format_size", "format_seconds", "format_rate", "series_table"]


def format_size(num_bytes: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if num_bytes >= scale:
            return f"{num_bytes / scale:.4g} {unit}"
    return f"{num_bytes:.0f} B"


def format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds * 1e6:.3g} µs"


def format_rate(per_second: float) -> str:
    if per_second >= 1.0:
        return f"{per_second:.4g}/s"
    return f"{per_second:.3g}/s"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def series_table(
    sizes: list[int],
    columns: dict[str, list[float]],
    formatters: dict[str, object] | None = None,
    title: str = "",
) -> str:
    """A table keyed by payload size with one column per named series."""
    formatters = formatters or {}
    headers = ["payload"] + list(columns)
    rows = []
    for index, size in enumerate(sizes):
        row = [format_size(size)]
        for name, series in columns.items():
            fmt = formatters.get(name, format_seconds)
            row.append(fmt(series[index]) if callable(fmt) else f"{series[index]:{fmt}}")
        rows.append(row)
    return format_table(headers, rows, title=title)
