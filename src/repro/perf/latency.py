"""End-to-end latency models (paper §6.2, Fig. 6 decomposition, Fig. 8).

Baseline::

    t^b = t1 + t2 + t3
    t1  = ℓ + ser(m)                 publisher → broker
    t2  = 0.05 ms × N_s              broker matches ALL subscriptions
    t3  = f·N_s × t1                 broker → each matching subscriber

P3S (worst case, as the paper formulates it)::

    t^p = max(t_f, t_b) + t_r
    t_f = t_f1 + t_f2 + t_f3 + t_f4        (metadata path)
      t_f1 = ℓ + ser(P_E) + enc_P          publisher encrypts + sends metadata
      t_f2 = ℓ + N_s·ser(P_E)              DS broadcast to ALL subscribers
      t_f3 = t_PBE                         local PBE match at the subscriber
      t_f4 = ℓ + ser(G)                    retrieval request reaches the RS
    t_b = t_b1 + t_b2                      (content-submission path)
      t_b1 = ℓ + ser(c_A) + enc_C          publisher CP-ABE-encrypts + sends
      t_b2 = ℓ + ser_LAN(c_A)              DS → RS on the 100 Mbps LAN
    t_r = ℓ + f·N_s·ser(c_A) + dec_C       RS → matching subscribers + decrypt
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import ModelParams

__all__ = ["baseline_latency", "p3s_latency", "latency_ratio", "LatencyBreakdown"]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-component latency decomposition (Fig. 6)."""

    total: float
    components: dict[str, float]


def baseline_latency(payload_bytes: float, p: ModelParams) -> LatencyBreakdown:
    t1 = p.latency_s + p.ser(payload_bytes)
    t2 = p.baseline_match_s * p.num_subscribers
    t3 = p.match_fraction * p.num_subscribers * t1
    return LatencyBreakdown(
        total=t1 + t2 + t3, components={"t1": t1, "t2": t2, "t3": t3}
    )


def p3s_latency(payload_bytes: float, p: ModelParams) -> LatencyBreakdown:
    c_a = p.cpabe_ciphertext_bytes(payload_bytes)

    t_f1 = p.latency_s + p.ser(p.encrypted_metadata_bytes) + p.pbe_encrypt_s
    t_f2 = p.latency_s + p.num_subscribers * p.ser(p.encrypted_metadata_bytes)
    t_f3 = p.pbe_match_s
    t_f4 = p.latency_s + p.ser(p.guid_bytes)
    t_f = t_f1 + t_f2 + t_f3 + t_f4

    t_b1 = p.latency_s + p.ser(c_a) + p.cpabe_encrypt_s
    t_b2 = p.latency_s + p.ser(c_a, p.lan_bandwidth_bps)
    t_b = t_b1 + t_b2

    t_r = (
        p.latency_s
        + p.match_fraction * p.num_subscribers * p.ser(c_a)
        + p.cpabe_decrypt_s
    )
    return LatencyBreakdown(
        total=max(t_f, t_b) + t_r,
        components={
            "t_f1": t_f1, "t_f2": t_f2, "t_f3": t_f3, "t_f4": t_f4,
            "t_f": t_f, "t_b1": t_b1, "t_b2": t_b2, "t_b": t_b, "t_r": t_r,
        },
    )


def latency_ratio(payload_bytes: float, p: ModelParams) -> float:
    """Fig. 8(b): P3S latency relative to the baseline."""
    return p3s_latency(payload_bytes, p).total / baseline_latency(payload_bytes, p).total
