"""The versioned benchmark record schema and the BENCH_*.json readers.

Nine PRs accumulated one-off BENCH_pr*.json shapes — each readable only
by the bench that wrote it.  This module is the single point of truth
for benchmark output from here on:

* :class:`BenchRecord` — one named, unit-tagged measurement with gating
  metadata: ``direction`` (which way is better), ``tolerance`` (the
  noise band `repro perf gate` allows against a baseline) and optional
  absolute ``floor``/``ceiling`` bounds that must hold on *any* machine;
* :func:`write_bench` — the v1 document writer every bench emits
  through (``bench_schema: 1`` plus suite, workload, seed, git rev and
  environment fingerprint);
* :func:`load_bench_file` — reads v1 documents *and* normalizes the six
  legacy PR-era shapes into records, so the committed history is one
  uniform stream however old the file;
* :func:`load_history` — every ``BENCH_*.json`` under a root, merged
  newest-wins by record name.

Units are informal but consistent: ``ratio`` (speedups — the only unit
comparable across machines), ``fraction`` (0..1 recoveries), ``ms`` /
``seconds``, ``ops/s``, ``bytes``, ``count``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "write_bench",
    "bench_document",
    "load_bench_file",
    "load_history",
    "environment_fingerprint",
    "git_rev",
]

BENCH_SCHEMA_VERSION = 1

# Default noise tolerance per unit when a record doesn't carry its own:
# machine-independent ratios are tight; raw timings across machines are
# basically weather, so the gate is generous with them.
DEFAULT_TOLERANCES = {
    "ratio": 0.40,
    "fraction": 0.10,
    "ms": 1.50,
    "seconds": 1.50,
    "ops/s": 0.75,
    "bytes": 0.25,
    "count": 0.25,
}
FALLBACK_TOLERANCE = 0.75


@dataclass
class BenchRecord:
    """One measurement plus the metadata the perf gate needs to judge it."""

    name: str
    value: float
    unit: str = "ratio"
    direction: str = "higher"  # "higher" or "lower" is better
    tolerance: float | None = None  # noise band vs baseline; None: per-unit default
    floor: float | None = None  # absolute machine-independent lower bound
    ceiling: float | None = None  # absolute upper bound
    seed: int | None = None
    source: str = ""

    def effective_tolerance(self) -> float:
        if self.tolerance is not None:
            return self.tolerance
        return DEFAULT_TOLERANCES.get(self.unit, FALLBACK_TOLERANCE)

    def to_dict(self) -> dict[str, Any]:
        out = {k: v for k, v in asdict(self).items() if v is not None and v != ""}
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any], source: str = "") -> "BenchRecord":
        return cls(
            name=data["name"],
            value=float(data["value"]),
            unit=data.get("unit", "ratio"),
            direction=data.get("direction", "higher"),
            tolerance=data.get("tolerance"),
            floor=data.get("floor"),
            ceiling=data.get("ceiling"),
            seed=data.get("seed"),
            source=data.get("source", source),
        )


def git_rev() -> str | None:
    """Short git revision of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_fingerprint() -> dict[str, Any]:
    """Enough machine identity to interpret a committed record later."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "git_rev": git_rev(),
    }


def bench_document(
    suite: str,
    records: Iterable[BenchRecord],
    workload: dict[str, Any] | None = None,
    seed: int | None = None,
) -> dict[str, Any]:
    """The v1 JSON document for one bench run."""
    return {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "workload": dict(workload or {}),
        "seed": seed,
        "env": environment_fingerprint(),
        "records": [record.to_dict() for record in records],
    }


def write_bench(
    path: str,
    suite: str,
    records: Iterable[BenchRecord],
    workload: dict[str, Any] | None = None,
    seed: int | None = None,
) -> dict[str, Any]:
    """Write the v1 document to ``path``; returns the document."""
    document = bench_document(suite, records, workload=workload, seed=seed)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


# -- readers: v1 and the legacy PR-era shapes -----------------------------------------


def _records_v1(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    return [BenchRecord.from_dict(entry, source) for entry in doc.get("records", [])]


def _records_pr2(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 2: match fan-out speedups + fixed-base scalar-mul micro."""
    fanout = doc["match_fanout"]
    micro = doc.get("fixed_base_micro", {})
    records = [
        BenchRecord(
            "match_fanout.precompute_speedup",
            fanout["precompute_speedup"],
            "ratio",
            floor=1.3,
            source=source,
        ),
        BenchRecord(
            "match_fanout.pool4_speedup",
            fanout["pool4_speedup"],
            "ratio",
            floor=2.0,
            source=source,
        ),
    ]
    if "speedup" in micro:
        records.append(
            BenchRecord(
                "match_fanout.fixed_base_speedup",
                micro["speedup"],
                "ratio",
                floor=1.5,
                source=source,
            )
        )
    return records


def _records_pr3(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 3: live TCP substrate latencies and throughput."""
    return [
        BenchRecord(
            "live_substrate.rpc_echo_p95_ms",
            doc["rpc_echo_rtt"]["p95_ms"],
            "ms",
            direction="lower",
            source=source,
        ),
        BenchRecord(
            "live_substrate.publish_deliver_p95_ms",
            doc["publish_deliver_latency"]["p95_ms"],
            "ms",
            direction="lower",
            source=source,
        ),
        BenchRecord(
            "live_substrate.publications_per_s",
            doc["burst_throughput"]["publications_per_s"],
            "ops/s",
            floor=1.0,
            source=source,
        ),
        BenchRecord(
            "live_substrate.live_over_sim",
            doc["substrate_overhead"]["live_over_sim"],
            "ratio",
            direction="lower",
            ceiling=25.0,
            source=source,
        ),
    ]


def _records_pr4(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 4: telemetry-plane scrape, exposition and flight-recorder tax."""
    return [
        BenchRecord(
            "telemetry.scrape_p95_ms",
            doc["scrape_sweep"]["p95_ms"],
            "ms",
            direction="lower",
            source=source,
        ),
        BenchRecord(
            "telemetry.exposition_render_ms",
            doc["openmetrics_exposition"]["render_ms"],
            "ms",
            direction="lower",
            source=source,
        ),
        BenchRecord(
            "telemetry.flight_recorder_overhead_pct",
            doc["flight_recorder_tax"]["overhead_pct"],
            "count",
            direction="lower",
            ceiling=80.0,
            source=source,
        ),
    ]


def _records_pr6(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 6: durable-store append throughput, recovery, GC sweeps."""
    records: list[BenchRecord] = []
    for backend, floor in (("wal_fsync", 50.0), ("wal_nofsync", 500.0), ("sqlite", 25.0)):
        entry = doc["append_throughput"].get(backend)
        if entry:
            records.append(
                BenchRecord(
                    f"store.{backend}_records_per_s",
                    entry["records_per_s"],
                    "ops/s",
                    floor=floor,
                    source=source,
                )
            )
    for entry in doc.get("recovery_open", []):
        records.append(
            BenchRecord(
                f"store.compaction_speedup_{entry['log_records']}",
                entry["speedup"],
                "ratio",
                floor=1.0,
                source=source,
            )
        )
    for entry in doc.get("gc_sweep", []):
        records.append(
            BenchRecord(
                f"store.gc_speedup_{entry['live_items']}",
                entry["speedup"],
                "ratio",
                floor=1.0,
                source=source,
            )
        )
    return records


def _records_pr8(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 8: cluster scaling — deliveries/s speedup per DS shard count."""
    records: list[BenchRecord] = []
    for entry in doc.get("scaling", []):
        shards = entry["ds_shards"]
        if shards <= 1:
            continue
        # sub-linear but real scaling: at least half the ideal speedup
        records.append(
            BenchRecord(
                f"cluster.speedup_ds{shards}",
                entry["speedup"],
                "ratio",
                floor=shards / 2,
                source=source,
            )
        )
    return records


def _records_pr9(doc: dict[str, Any], source: str) -> list[BenchRecord]:
    """PR 9: observability tax — throughput recovery per tracing mode."""
    modes = doc["modes"]
    seed = doc.get("workload", {}).get("seed")
    records = [
        BenchRecord(
            "obs_overhead.always_recovery",
            modes["always"]["recovery_vs_off"],
            "fraction",
            floor=0.5,
            seed=seed,
            source=source,
        ),
        BenchRecord(
            "obs_overhead.sampled_recovery",
            modes["sampled"]["recovery_vs_off"],
            "fraction",
            floor=0.90,
            seed=seed,
            source=source,
        ),
    ]
    return records


# Shape detection: the first key that identifies a legacy document.
_LEGACY_NORMALIZERS: list[tuple[str, Callable[[dict, str], list[BenchRecord]]]] = [
    ("match_fanout", _records_pr2),
    ("rpc_echo_rtt", _records_pr3),
    ("scrape_sweep", _records_pr4),
    ("append_throughput", _records_pr6),
    ("scaling", _records_pr8),
    ("modes", _records_pr9),
]


def load_bench_file(path: str) -> list[BenchRecord]:
    """Records from one BENCH file — v1 or any legacy PR-era shape.

    Unknown shapes raise ``ValueError`` (a silent empty read would make
    the gate vacuously green).
    """
    with open(path) as handle:
        doc = json.load(handle)
    source = os.path.basename(path)
    if doc.get("bench_schema") == BENCH_SCHEMA_VERSION:
        return _records_v1(doc, source)
    if isinstance(doc.get("bench_schema"), int):
        raise ValueError(
            f"{source}: unsupported bench_schema {doc['bench_schema']}"
        )
    for key, normalizer in _LEGACY_NORMALIZERS:
        if key in doc:
            return normalizer(doc, source)
    raise ValueError(f"{source}: unrecognized benchmark document shape")


def load_history(root: str) -> dict[str, BenchRecord]:
    """Every ``BENCH_*.json`` under ``root`` as one name → record map.

    Files load in sorted order, so when two files carry the same record
    name the lexically later one wins — re-running a migrated bench
    supersedes its legacy ancestor.
    """
    history: dict[str, BenchRecord] = {}
    for entry in sorted(os.listdir(root)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        for record in load_bench_file(os.path.join(root, entry)):
            history[record.name] = record
    return history
