"""Cross-validation: the analytic models vs full protocol simulations.

The paper justifies its analytic treatment with prototype spot
measurements; we can go further — the same deployment the models describe
can be *run* (real ciphertexts, simulated network), and the two compared.
:func:`simulate_p3s_latency` / :func:`simulate_baseline_latency` run one
publication through a deployment sized like a :class:`ModelParams`
instance and report the measured worst-case delivery latency;
:func:`simulate_p3s_throughput` offers a sustained publication load and
reports the achieved completion rate.

Agreement is necessarily approximate (the models are deliberately
worst-case — e.g. ``t^p`` assumes the last matcher requests first), so
the validation asserts band agreement, not equality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baseline import BaselineSystem
from ..core import ComputeTimings, P3SConfig, P3SSystem
from ..pbe import AttributeSpec, Interest, MetadataSchema
from .params import ModelParams

__all__ = [
    "SimulatedPoint",
    "simulate_p3s_latency",
    "simulate_baseline_latency",
    "simulate_p3s_throughput",
]


@dataclass(frozen=True)
class SimulatedPoint:
    """One measured operating point of a simulated deployment."""

    payload_bytes: int
    num_subscribers: int
    num_matching: int
    value: float  # seconds (latency) or publications/second (throughput)


def _schema() -> MetadataSchema:
    return MetadataSchema([AttributeSpec("topic", tuple(f"t{i}" for i in range(8)))])


def _timings(params: ModelParams) -> ComputeTimings:
    return ComputeTimings(
        pbe_encrypt=params.pbe_encrypt_s,
        pbe_match=params.pbe_match_s,
        cpabe_encrypt=params.cpabe_encrypt_s,
        cpabe_decrypt=params.cpabe_decrypt_s,
        pke_op=0.0,  # the analytic model omits PKE costs
        symmetric_per_byte=0.0,  # ... and bulk symmetric costs
    )


def _build_p3s(params: ModelParams, num_subscribers: int, num_matching: int) -> tuple:
    config = P3SConfig(
        schema=_schema(),
        timings=_timings(params),
        bandwidth_bps=params.bandwidth_bps,
        lan_bandwidth_bps=params.lan_bandwidth_bps,
        latency_s=params.latency_s,
    )
    system = P3SSystem(config)
    for index in range(num_subscribers):
        subscriber = system.add_subscriber(f"s{index}", {"attr"})
        topic = "t0" if index < num_matching else "t7"
        system.subscribe(subscriber, Interest({"topic": topic}))
    publisher = system.add_publisher("pub")
    system.run()
    return system, publisher


def simulate_p3s_latency(
    payload_bytes: int,
    params: ModelParams,
    num_subscribers: int = 10,
    num_matching: int = 2,
) -> SimulatedPoint:
    """Worst-case delivery latency of one publication, measured."""
    system, publisher = _build_p3s(params, num_subscribers, num_matching)
    record = publisher.publish(
        {"topic": "t0"}, b"\x00" * payload_bytes, policy="attr"
    )
    system.run()
    latencies = system.delivery_latencies(record)
    assert len(latencies) == num_matching, "simulation must deliver to every matcher"
    return SimulatedPoint(payload_bytes, num_subscribers, num_matching, max(latencies))


def simulate_baseline_latency(
    payload_bytes: int,
    params: ModelParams,
    num_subscribers: int = 10,
    num_matching: int = 2,
) -> SimulatedPoint:
    system = BaselineSystem(
        bandwidth_bps=params.bandwidth_bps,
        latency_s=params.latency_s,
        timings=_timings(params),
    )
    for index in range(num_subscribers):
        subscriber = system.add_subscriber(f"s{index}")
        subscriber.subscribe(Interest({"topic": "t0" if index < num_matching else "t7"}))
    system.run()
    publisher = system.add_publisher("pub")
    start = system.sim.now
    pid = publisher.publish({"topic": "t0"}, b"\x00" * payload_bytes)
    system.run()
    deliveries = system.deliveries_for(pid)
    assert len(deliveries) == num_matching
    latency = max(d.delivered_at - start for d in deliveries)
    return SimulatedPoint(payload_bytes, num_subscribers, num_matching, latency)


def simulate_p3s_throughput(
    payload_bytes: int,
    params: ModelParams,
    num_subscribers: int = 10,
    num_matching: int = 2,
    num_publications: int = 10,
) -> SimulatedPoint:
    """Achieved publication rate under back-to-back offered load.

    Publishes ``num_publications`` items as fast as the publisher can and
    divides by the simulated makespan until the last delivery — the
    steady-state analogue of the models' ``min`` of stage rates.
    """
    system, publisher = _build_p3s(params, num_subscribers, num_matching)
    start = system.now
    records = [
        publisher.publish({"topic": "t0"}, b"\x00" * payload_bytes, policy="attr")
        for _ in range(num_publications)
    ]
    system.run()
    delivered = sum(len(system.deliveries_for(record)) for record in records)
    assert delivered == num_publications * num_matching
    makespan = system.now - start
    return SimulatedPoint(
        payload_bytes, num_subscribers, num_matching, num_publications / makespan
    )
