"""Live-substrate fault injection: a TCP proxy + a record-duplication shim.

Two complementary instruments, matching where each fault is physically
possible on the live stack:

* :class:`FaultProxy` — a transparent TCP relay interposed in front of a
  live service by re-registering its :class:`~repro.live.rpc.AddressBook`
  entry (:func:`interpose`).  It tears connections mid-stream and delays
  byte chunks, exercising `LiveRpcEndpoint`'s reconnect/backoff dialing
  and the clients' retrieval retry budgets against real sockets.  It
  never duplicates bytes: the AEAD record layer's strict sequence
  numbers make wire-level duplication a channel-fatal
  ``MessageLossError`` *by design*.
* :func:`duplicate_dispatch` — application-level record duplication via
  the ``dispatch_fanout`` seam on :class:`~repro.live.rpc.LiveRpcEndpoint`,
  re-dispatching selected decoded frames so the subscriber's GUID dedup
  boundary is exercised where duplication can actually occur (broker
  redelivery, client retransmission).

Proxies start *disarmed* (pure relays); :meth:`FaultProxy.arm` turns
faults on once setup traffic (handshakes, subscriptions) is done, so a
soak perturbs the steady state rather than the bootstrap.
"""

from __future__ import annotations

import asyncio
import random

from ..obs import profile as obs

__all__ = ["FaultProxy", "interpose", "duplicate_dispatch"]


class FaultProxy:
    """A fault-injecting TCP relay in front of one upstream service.

    Faults are derived from ``random.Random(seed)`` per accepted
    connection: every ``tear_every_conns``-th connection (1-based) is
    torn down abruptly after a seeded number of relayed chunks, and
    when ``delay_every_chunks`` is set every N-th chunk in either
    direction is held ``delay_s`` before forwarding.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        seed: int = 0,
        tear_every_conns: int = 0,
        tear_after_chunks_max: int = 6,
        delay_every_chunks: int = 0,
        delay_s: float = 0.05,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.tear_every_conns = tear_every_conns
        self.tear_after_chunks_max = tear_after_chunks_max
        self.delay_every_chunks = delay_every_chunks
        self.delay_s = delay_s
        self.armed = False
        self.connections = 0
        self.chunks_relayed = 0
        self.tears = 0
        self.delays = 0
        self._rng = random.Random(seed)
        self._server: asyncio.base_events.Server | None = None

    async def start(self, host: str = "127.0.0.1") -> tuple[str, int]:
        """Listen on an ephemeral port; returns ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, 0)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        conn_index = self.connections
        # the tear decision is made at accept time (seeded, per
        # connection) but only *enforced* while armed — long-lived
        # connections dialed during setup still tear once faults start
        tear_at: int | None = None
        if self.tear_every_conns and conn_index % self.tear_every_conns == 0:
            tear_at = self._rng.randint(2, max(2, self.tear_after_chunks_max))
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            writer.transport.abort()
            return
        chunk_count = [0]  # shared across both pump directions

        async def pump(src: asyncio.StreamReader, dst: asyncio.StreamWriter) -> None:
            try:
                while True:
                    data = await src.read(65536)
                    if not data:
                        break
                    chunk_count[0] += 1
                    self.chunks_relayed += 1
                    if self.armed:
                        if tear_at is not None and chunk_count[0] >= tear_at:
                            self.tears += 1
                            obs.record_op("chaos.live.tear")
                            # abort both directions: a mid-session RST,
                            # not a graceful FIN
                            writer.transport.abort()
                            up_writer.transport.abort()
                            return
                        if (
                            self.delay_every_chunks
                            and chunk_count[0] % self.delay_every_chunks == 0
                        ):
                            self.delays += 1
                            obs.record_op("chaos.live.delay")
                            await asyncio.sleep(self.delay_s)
                    dst.write(data)
                    await dst.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            finally:
                try:
                    dst.write_eof()
                except (OSError, RuntimeError):
                    pass

        try:
            await asyncio.gather(
                pump(reader, up_writer), pump(up_reader, writer), return_exceptions=True
            )
        except asyncio.CancelledError:
            pass  # proxy shutdown cancels in-flight relays; nothing to flush
        for w in (writer, up_writer):
            try:
                w.close()
            except RuntimeError:
                pass


async def interpose(
    deployment,
    names: list[str],
    seed: int = 0,
    **fault_kwargs,
) -> dict[str, "FaultProxy"]:
    """Put a :class:`FaultProxy` in front of each named live service.

    Re-registers each service's address-book entry with the proxy's
    listen address (the signed service key is untouched — the proxy
    cannot speak the handshake, it only relays bytes).  Must run after
    ``deployment.start()`` and before clients dial, since endpoints
    resolve addresses at dial time.  Returns ``name → proxy``; callers
    own closing them.
    """
    proxies: dict[str, FaultProxy] = {}
    for offset, name in enumerate(names):
        entry = deployment.addresses.resolve(name)
        proxy = FaultProxy(entry.host, entry.port, seed=seed + offset, **fault_kwargs)
        host, port = await proxy.start()
        deployment.addresses.register(name, host, port, entry.service_key)
        proxies[name] = proxy
    return proxies


def duplicate_dispatch(endpoint, msg_type: str, every: int = 2) -> None:
    """Duplicate every ``every``-th inbound ``msg_type`` frame on ``endpoint``.

    Installs a ``dispatch_fanout`` hook re-dispatching the decoded frame
    twice — application-level duplication, injected behind the AEAD
    record layer where it can really happen.  RPC requests/responses are
    never duplicated (correlation ids make that a no-op anyway); this
    targets one-way pushes such as the DS's ``jms.deliver``.
    """
    counter = [0]

    def fanout(message) -> int:
        if message.msg_type != msg_type or message.headers.get("rpc"):
            return 1
        counter[0] += 1
        if counter[0] % every == 0:
            obs.record_op("chaos.live.duplicate")
            return 2
        return 1

    endpoint.dispatch_fanout = fanout
