"""Simulator-side fault injection: a FaultSchedule installed on a Network.

:class:`SimFaultInjector` implements the
:meth:`repro.net.network.Network.set_fault_injector` contract: called
once per transmission with ``(src, dst, message, base_delay)``, it
returns the delivery-delay list for that frame.  All decisions are pure
functions of the schedule, the simulated clock, and per-fault hit
counters — the injector holds no entropy of its own, so a replayed
schedule makes identical decisions.

The injector also keeps a deterministic *application log* (which fault
fired, on which link, how often) that the runner folds into the JSON
report, and bumps ``chaos.*`` operation counters through the
observability hooks so injected faults show up next to the protocol
metrics they perturb.
"""

from __future__ import annotations

from collections import Counter

from ..obs import profile as obs
from .schedule import FaultSchedule

__all__ = ["SimFaultInjector"]


class SimFaultInjector:
    """Evaluate a :class:`FaultSchedule` against live simulator traffic."""

    def __init__(self, schedule: FaultSchedule, sim, epoch: float = 0.0):
        self.schedule = schedule
        self.sim = sim
        # fault windows are relative to the arming instant, so the
        # (fault-free) subscription phase never shifts them
        self.epoch = epoch
        self._window_hits = [0] * len(schedule.faults)
        # (fault_index, kind, src, dst) -> times applied
        self.applied: Counter[tuple[int, str, str, str]] = Counter()

    def arm(self, epoch: float) -> None:
        """Re-base the schedule's time origin (typically ``sim.now``)."""
        self.epoch = epoch

    def applied_summary(self) -> list[dict]:
        """Deterministic, JSON-ready log of every fault application."""
        return [
            {"fault": index, "kind": kind, "src": src, "dst": dst, "count": count}
            for (index, kind, src, dst), count in sorted(self.applied.items())
        ]

    def __call__(self, src: str, dst: str, message, base_delay: float) -> list[float]:
        t = self.sim.now - self.epoch
        for index, fault in enumerate(self.schedule.faults):
            if not fault.in_window(t) or not fault.matches_link(src, dst):
                continue
            self._window_hits[index] += 1
            if fault.hits and self._window_hits[index] not in fault.hits:
                continue
            # first matching fault wins: deterministic and independently
            # removable, which is what minimization relies on
            self.applied[(index, fault.kind, src, dst)] += 1
            obs.record_op(f"chaos.{fault.kind}")
            if fault.kind in ("drop", "partition"):
                return []
            if fault.kind in ("delay", "reorder"):
                return [base_delay + fault.delay_s]
            # duplicate: the copy trails by the configured gap
            return [base_delay, base_delay + max(fault.delay_s, 0.001)]
        return [base_delay]
