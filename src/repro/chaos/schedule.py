"""Seeded, replayable fault schedules.

A chaos run is parameterized by exactly one integer seed: the workload,
the fault schedule, and every injection decision derive from
``random.Random(seed)`` — no wall clock, no ambient entropy — so a
failing run replays bit-identically from its seed, and a schedule can be
serialized to JSON, shipped in a bug report, and re-run verbatim.

The fault model (one :class:`Fault` per entry):

==============  ==============================================================
``drop``        lose matching frames on the wire (selected hit ordinals)
``delay``       hold matching frames back ``delay_s`` extra seconds
``reorder``     delay *selected* frames so later traffic overtakes them
``duplicate``   deliver matching frames twice, the copy ``delay_s`` later
``partition``   drop *everything* to/from ``node`` inside the window
==============  ==============================================================

Faults carry a ``[start, end)`` window measured from the chaos epoch
(the instant the injector is armed, i.e. the start of the publication
phase) and match links by ``src``/``dst`` pattern (``"*"`` wildcard,
``"sub*"`` prefix).  ``hits`` selects which matching frames (1-based
ordinals per fault) are affected; empty means all of them.

Schedule *generation* is deliberately budget-aware: loss-type faults
(drop, partition) are only generated on *retried* paths — the retrieval
path (subscriber ↔ anonymizer ↔ RS), and, since the reliable-publish
upgrade (PUBACK + bounded retransmit, see ``repro.mq.client``), the
publisher → DS publish path too.  The remaining unacknowledged casts
(DS → RS store, DS → subscriber deliver) get delay/reorder/duplicate
only: loss there is unrecoverable by client retrying (see
``docs/CHAOS.md`` for the fault-model rationale).  Replayed or
hand-built schedules can of course place faults anywhere, which is
exactly how the invariant checker's mutation tests manufacture failing
runs on purpose.

Sharded profiles (``ds_shards``/``rs_shards`` > 1) generate faults
against the shard names (``ds0``, ``rs1``, …) and may partition an RS
replica — replication plus retrieval failover must absorb it.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..cluster.router import shard_names

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultSchedule",
    "Profile",
    "PROFILES",
    "minimize_schedule",
]

FAULT_KINDS = ("drop", "delay", "duplicate", "reorder", "partition")


def _pattern_matches(pattern: str, name: str) -> bool:
    if pattern == "*" or pattern == name:
        return True
    return pattern.endswith("*") and name.startswith(pattern[:-1])


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: kind, link selector, time window, parameters."""

    kind: str
    start: float
    end: float
    src: str = "*"
    dst: str = "*"
    node: str = ""  # partition target; matches traffic in either direction
    delay_s: float = 0.0  # extra latency (delay/reorder) or copy gap (duplicate)
    hits: tuple[int, ...] = ()  # 1-based ordinals of matching frames; () = all

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")

    def in_window(self, t: float) -> bool:
        return self.start <= t < self.end

    def matches_link(self, src: str, dst: str) -> bool:
        if self.kind == "partition":
            return src == self.node or dst == self.node
        return _pattern_matches(self.src, src) and _pattern_matches(self.dst, dst)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "start": self.start, "end": self.end}
        if self.src != "*":
            out["src"] = self.src
        if self.dst != "*":
            out["dst"] = self.dst
        if self.node:
            out["node"] = self.node
        if self.delay_s:
            out["delay_s"] = self.delay_s
        if self.hits:
            out["hits"] = list(self.hits)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        return cls(
            kind=data["kind"],
            start=data["start"],
            end=data["end"],
            src=data.get("src", "*"),
            dst=data.get("dst", "*"),
            node=data.get("node", ""),
            delay_s=data.get("delay_s", 0.0),
            hits=tuple(data.get("hits", ())),
        )


@dataclass(frozen=True)
class Profile:
    """Shape parameters for one named schedule generator.

    The retry-budget fields are consumed by the runner (they harden the
    subscribers); the generator keeps loss windows and hit counts inside
    that budget so a passing profile *should* pass — every delivery
    deviation is then a real bug, not an over-aggressive schedule.
    """

    name: str
    n_faults: int
    kinds: tuple[str, ...]
    subscribers: int = 3
    publications: int = 4
    horizon_s: float = 2.5
    # fault start times are sampled inside this window: the simulator's
    # publication burst completes within ~0.3s of the epoch, so windows
    # anchored later would never see a frame
    traffic_window_s: float = 0.3
    max_extra_delay_s: float = 0.6
    max_partition_s: float = 0.9
    max_loss_hits: int = 2
    # subscriber hardening applied by the runner
    retrieval_retries: int = 8
    retry_delay_s: float = 0.2
    call_timeout_s: float = 0.6
    # exercise the durability invariant against a WAL-backed RS
    durable: bool = False
    # -- sharded topology (repro.cluster) ---------------------------------
    # shard counts handed to P3SConfig; 1/1 keeps the classic
    # single-node names ("ds", "rs") so existing profiles replay the
    # same schedules byte-for-byte
    ds_shards: int = 1
    rs_shards: int = 1
    rs_replication: int = 1
    # partition faults pick their victim from this pool.  The anonymizer
    # sits exclusively on the retried path, so it is always safe; an RS
    # *replica* is safe only under replication >= 2 (the other replica
    # plus retrieval failover absorbs the outage).
    partition_targets: tuple[str, ...] = ("anon",)
    # -- SLO alerting closure (repro.obs.slo) ------------------------------
    # When True the runner evaluates the chaos SLO set over the run's
    # event timeline and checks the alerting invariant family: material
    # injected faults must fire their mapped burn-rate alerts, alerts
    # must clear after recovery, and a fault-free run must fire none.
    # Opt-in per profile because the property-based suites run arbitrary
    # seeds on smoke/default, where alert materiality is not guaranteed.
    alerts: bool = False
    # delivery-latency SLO threshold (simulated seconds) for the chaos
    # engine; sits above the fault-free ceiling (base pipeline + one
    # natural retrieve-before-store retry) so only injected faults
    # breach it
    latency_slo_s: float = 0.8


PROFILES: dict[str, Profile] = {
    profile.name: profile
    for profile in (
        Profile("smoke", 2, ("delay", "duplicate"), subscribers=2, publications=2),
        Profile("default", 5, ("drop", "delay", "duplicate", "reorder")),
        Profile("ci", 6, FAULT_KINDS, durable=True, alerts=True),
        Profile("heavy", 12, FAULT_KINDS, subscribers=4, publications=6,
                horizon_s=4.0, durable=True),
        Profile("partition", 3, ("partition", "drop"), durable=False),
        # sharded cluster under fire: 2 DS x 2 RS shards, 2-way
        # replication, durable stores; partitions may isolate an RS
        # replica and the invariants must still hold
        Profile("shard", 6, FAULT_KINDS, durable=True,
                ds_shards=2, rs_shards=2, rs_replication=2,
                partition_targets=("anon", "rs1")),
    )
}


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered list of faults plus its provenance (seed + profile)."""

    seed: int
    profile: str
    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with fault ``index`` removed (the minimization step)."""
        kept = self.faults[:index] + self.faults[index + 1 :]
        return replace(self, faults=kept)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(
            seed=data["seed"],
            profile=data.get("profile", "replay"),
            faults=tuple(Fault.from_dict(f) for f in data["faults"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def generate(
        cls,
        seed: int,
        profile: str | Profile,
        subscriber_names: Sequence[str],
        publisher_name: str = "pub",
    ) -> "FaultSchedule":
        """Derive a schedule from ``random.Random(seed)`` alone.

        Link pools by loss class:

        * *retried* links (sub ↔ anon, anon ↔ rs, pub → ds): any fault
          kind — the retrieval retry budget absorbs loss on the first
          two; the PUBACK/retransmit protocol (the chaos runner always
          enables ``reliable_publish``) absorbs it on the third;
        * *benign* links (ds → sub, ds → rs): delay / reorder /
          duplicate only — loss on these DS-originated unacknowledged
          casts would be unrecoverable by design (documented gap);
        * partitions pick a victim from ``profile.partition_targets``
          (the anonymizer by default; sharded profiles may add an RS
          replica).

        Sharded profiles expand "ds"/"rs" into their shard names, so
        faults land on real links.
        """
        prof = PROFILES[profile] if isinstance(profile, str) else profile
        rng = random.Random(seed)
        subs = list(subscriber_names)
        ds_names = shard_names("ds", prof.ds_shards)
        rs_names = shard_names("rs", prof.rs_shards)
        retried: list[tuple[str, str]] = []
        for rs in rs_names:
            retried += [("anon", rs), (rs, "anon")]
        for name in subs:
            retried += [(name, "anon"), ("anon", name)]
        for ds in ds_names:
            retried.append((publisher_name, ds))
        benign = list(retried)
        benign += [(ds, rs) for ds in ds_names for rs in rs_names]
        benign += [(ds, name) for ds in ds_names for name in subs]
        faults: list[Fault] = []
        for _ in range(prof.n_faults):
            kind = rng.choice(prof.kinds)
            start = round(rng.uniform(0.0, prof.traffic_window_s), 3)
            length = round(rng.uniform(0.3, prof.horizon_s * 0.5), 3)
            if kind == "partition":
                end = round(start + min(length, prof.max_partition_s), 3)
                faults.append(
                    Fault(kind, start, end, node=rng.choice(prof.partition_targets))
                )
                continue
            end = round(start + length, 3)
            if kind == "drop":
                src, dst = rng.choice(retried)
                count = rng.randint(1, prof.max_loss_hits)
                hits = tuple(sorted(rng.sample(range(1, 5), count)))
                faults.append(Fault(kind, start, end, src, dst, hits=hits))
            elif kind == "duplicate":
                src, dst = rng.choice(benign)
                hits = (rng.randint(1, 3),)
                gap = round(rng.uniform(0.01, 0.2), 3)
                faults.append(Fault(kind, start, end, src, dst, delay_s=gap, hits=hits))
            elif kind == "reorder":
                src, dst = rng.choice(benign)
                hits = (rng.randint(1, 3),)
                extra = round(rng.uniform(0.05, prof.max_extra_delay_s), 3)
                faults.append(Fault(kind, start, end, src, dst, delay_s=extra, hits=hits))
            else:  # delay: every matching frame in the window
                src, dst = rng.choice(benign)
                extra = round(rng.uniform(0.02, prof.max_extra_delay_s), 3)
                faults.append(Fault(kind, start, end, src, dst, delay_s=extra))
        return cls(seed=seed, profile=prof.name, faults=tuple(faults))


def minimize_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
) -> FaultSchedule:
    """Greedily shrink a failing schedule to a locally minimal fault set.

    Repeatedly tries removing one fault at a time, keeping any removal
    after which ``still_fails`` still returns True, until no single
    removal preserves the failure.  O(n²) runs worst case — fine for the
    ≤ a-dozen-fault schedules the generator emits — and the result is
    1-minimal: every remaining fault is necessary to reproduce.
    """
    current = schedule
    shrunk = True
    while shrunk and current.faults:
        shrunk = False
        for index in range(len(current.faults)):
            candidate = current.without(index)
            if still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current
