"""Seeded chaos runs: workload + schedule + injection + invariant report.

One :func:`run_chaos` call is the unit of chaos testing:

1. derive a pub/sub workload and a fault schedule from the seed;
2. compute the plaintext delivery oracle;
3. stand up a :class:`~repro.core.system.P3SSystem`, run the
   subscription phase fault-free, then arm the injector and publish
   through the fault window;
4. run to quiescence and evaluate the full invariant catalogue
   (delivery, privacy, durability, liveness);
5. emit a :class:`ChaosReport` whose JSON is bit-deterministic for a
   given seed — two runs with the same seed produce identical fault
   schedules, delivery sets, and invariant reports.

Determinism ground rules honored here: ``random.Random(seed)`` is the
only entropy source for schedules/workloads; the report carries no wall
clock, no filesystem paths, and no per-run randomized identifiers
(GUIDs/ciphertexts vary per run — delivery sets are compared as
plaintext payloads, the substrate-independent observable).

``minimize`` greedily shrinks a failing schedule to a 1-minimal fault
set by re-running the same seed with candidate schedules — possible
only because a schedule fully determines the run.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field

from ..core.config import P3SConfig
from ..core.system import P3SSystem
from ..obs.slo import SloEngine, chaos_slos
from ..store.wal import WalEngine
from .inject import SimFaultInjector
from .invariants import (
    InvariantResult,
    check_alerting,
    check_delivery,
    check_durability,
    check_liveness,
    check_privacy,
)
from .oracle import chaos_schema, expected_deliveries, generate_scenario
from .schedule import PROFILES, FaultSchedule, Profile, minimize_schedule

__all__ = ["ChaosReport", "run_chaos", "minimize"]


@dataclass
class ChaosReport:
    """Everything one chaos run produced, JSON-ready and deterministic."""

    seed: int
    profile: str
    passed: bool
    schedule: dict
    workload: dict
    expected: dict[str, list[str]]
    actual: dict[str, list[str]]
    applied_faults: list[dict]
    invariants: list[InvariantResult] = field(default_factory=list)
    # the SLO engine's report over the run's event timeline; present
    # only for profiles with alerts=True (kept out of other profiles'
    # dicts so their historical reports stay byte-identical)
    slo: dict | None = None

    def failures(self) -> list[InvariantResult]:
        return [result for result in self.invariants if not result.passed]

    def to_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "profile": self.profile,
            "passed": self.passed,
            "schedule": self.schedule,
            "workload": self.workload,
            "expected": self.expected,
            "actual": self.actual,
            "applied_faults": self.applied_faults,
            "invariants": [result.to_dict() for result in self.invariants],
        }
        if self.slo is not None:
            out["slo"] = self.slo
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _payload_map(delivery_map) -> dict[str, list[str]]:
    return {
        name: [payload.decode("utf-8", "replace") for payload in payloads]
        for name, payloads in sorted(delivery_map.items())
    }


# SLO evaluation cadence over the run's simulated timeline: fine enough
# that the page rule's 0.25s short window always gets several looks
# while a bad event is inside it.
SLO_TICK_S = 0.05
# Ticks continue this far past the last event so the slowest window
# (the ticket rule's 2.5s long window) fully drains and every fired
# alert gets its chance to clear before `alerting.all_cleared` runs.
SLO_CLEAR_MARGIN_S = 2.6


def _slo_report(system, publisher, expected, epoch: float, prof: Profile) -> dict:
    """Replay the run's delivery timeline through a chaos SLO engine.

    Every event is a deterministic function of simulated time, so the
    resulting report (alert history included) is bit-identical across
    replays of the same seed:

    * ``delivery_latency`` — one value event per delivery,
      ``delivered_at - submitted_at`` via the publication id;
    * ``delivery_integrity`` — good per delivery, bad at each
      duplicate-suppression instant (the wire duplicated a frame);
    * ``delivery_completeness`` — good per oracle-expected payload
      delivered, bad at quiescence for each one that never arrived.

    Times are rebased to the chaos epoch (injector arming), matching the
    fault schedule's clock, and the engine is ticked on a fixed grid
    through ``SLO_CLEAR_MARGIN_S`` past the last event.
    """
    engine = SloEngine(chaos_slos(latency_threshold_s=prof.latency_slo_s))
    submitted = {
        record.publication_id: record.submitted_at for record in publisher.published
    }
    events: list[tuple[float, str, dict]] = []
    for name, sub in sorted(system.subscribers.items()):
        for delivery in sub.stats.deliveries:
            at = delivery.delivered_at - epoch
            latency = delivery.delivered_at - submitted[delivery.publication_id]
            events.append((at, "delivery_latency", {"value": latency}))
            events.append((at, "delivery_integrity", {"good": True}))
        for suppressed_at in sub.stats.duplicate_suppressed_at:
            events.append((suppressed_at - epoch, "delivery_integrity", {"good": False}))
    quiesce_t = system.now - epoch
    for name in sorted(expected):
        sub = system.subscribers.get(name)
        deliveries = list(sub.stats.deliveries) if sub is not None else []
        remaining = list(expected.get(name, ()))
        for delivery in deliveries:
            if delivery.payload in remaining:
                remaining.remove(delivery.payload)
                events.append(
                    (delivery.delivered_at - epoch, "delivery_completeness", {"good": True})
                )
        for _missing in remaining:
            events.append((quiesce_t, "delivery_completeness", {"good": False}))
    events.sort(key=lambda event: event[0])
    for at, slo, kwargs in events:
        engine.record(slo, at=round(at, 9), **kwargs)
    last_t = events[-1][0] if events else 0.0
    ticks = int((last_t + SLO_CLEAR_MARGIN_S) / SLO_TICK_S) + 1
    for index in range(ticks + 1):
        engine.evaluate(round(index * SLO_TICK_S, 6))
    return engine.report()


def run_chaos(
    seed: int,
    profile: str = "default",
    schedule: FaultSchedule | None = None,
    data_dir: str | None = None,
    mutate=None,
) -> ChaosReport:
    """One seeded chaos run; see the module docstring for the phases.

    ``schedule`` replays/overrides the generated one (same-seed workload,
    different faults — the replay and minimization entry point).
    ``mutate(system)`` is a test seam: called after the subscription
    phase, before the fault window, so mutation tests can break the
    system on purpose (disable retries, disable dedup, taint an
    observation log) and prove the invariants catch it.
    ``data_dir`` hosts the durable profiles' WAL; a temp directory is
    used (and removed) when omitted.
    """
    prof: Profile = PROFILES[profile] if profile in PROFILES else PROFILES["default"]
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}")
    scenario = generate_scenario(seed, prof.subscribers, prof.publications)
    expected = expected_deliveries(scenario)
    if schedule is None:
        schedule = FaultSchedule.generate(
            seed, prof, [spec.name for spec in scenario.subscribers], scenario.publisher_name
        )

    own_tmp = data_dir is None and prof.durable
    if own_tmp:
        data_dir = tempfile.mkdtemp(prefix="p3s-chaos-")
    # chaos always publishes reliably: the schedule generator may drop
    # publish frames (pub -> ds is in the retried pool), and the
    # PUBACK/retransmit protocol is what makes that loss recoverable
    config = P3SConfig(
        schema=chaos_schema(),
        ds_shards=prof.ds_shards,
        rs_shards=prof.rs_shards,
        rs_replication=prof.rs_replication,
        reliable_publish=True,
    )
    if prof.durable:
        config = config.with_(
            store_backend="wal",
            data_dir=data_dir,
            store_fsync=False,  # crash realism comes from the fault plan, not fsync cost
            store_snapshot_every=8,
        )

    system = None
    try:
        system = P3SSystem(config)
        subscribers = {}
        for spec in scenario.subscribers:
            subscriber = system.add_subscriber(spec.name, attributes=set(spec.attributes))
            # retry hardening: the profile's loss windows stay inside
            # this budget, so delivery deviations are real bugs
            subscriber.retrieval_retries = prof.retrieval_retries
            subscriber.retry_delay_s = prof.retry_delay_s
            subscriber.call_timeout_s = prof.call_timeout_s
            subscribers[spec.name] = subscriber
            for interest in spec.interests:
                system.subscribe(subscriber, interest)
        system.run()  # subscription phase, fault-free

        if mutate is not None:
            mutate(system)

        injector = SimFaultInjector(schedule, system.sim, epoch=system.now)
        system.set_fault_injector(injector)
        publisher = system.add_publisher(scenario.publisher_name)
        for publication in scenario.publications:
            publisher.publish(
                publication.metadata_dict,
                publication.payload,
                policy=publication.policy,
                ttl_s=publication.ttl_s,
            )
        system.run()  # through the fault window, to quiescence
        system.set_fault_injector(None)

        actual = {
            name: tuple(sorted(d.payload for d in sub.stats.deliveries))
            for name, sub in sorted(system.subscribers.items())
        }
        delivered_ids = {
            name: [d.publication_id for d in sub.stats.deliveries]
            for name, sub in sorted(system.subscribers.items())
        }

        invariants: list[InvariantResult] = []
        invariants += check_delivery(expected, actual, delivered_ids)
        invariants += check_privacy(system, [p.payload for p in scenario.publications])
        if prof.durable:
            invariants += _check_store_durability(system, data_dir)
        invariants += check_liveness(system, expected, actual)
        slo_section = None
        if prof.alerts:
            slo_section = _slo_report(system, publisher, expected, injector.epoch, prof)
            invariants += check_alerting(
                slo_section, injector.applied_summary(), schedule.to_dict()
            )

        report = ChaosReport(
            seed=seed,
            profile=prof.name,
            passed=all(result.passed for result in invariants),
            schedule=schedule.to_dict(),
            workload={
                "subscribers": [
                    {
                        "name": spec.name,
                        "attributes": sorted(spec.attributes),
                        "interests": [i.to_json() for i in spec.interests],
                    }
                    for spec in scenario.subscribers
                ],
                "publications": [
                    {
                        "metadata": dict(pub.metadata),
                        "payload": pub.payload.decode(),
                        "policy": pub.policy,
                    }
                    for pub in scenario.publications
                ],
            },
            expected=_payload_map(expected),
            actual=_payload_map(actual),
            applied_faults=injector.applied_summary(),
            invariants=invariants,
            slo=slo_section,
        )
        return report
    finally:
        if system is not None:
            system.close()
        if own_tmp:
            shutil.rmtree(data_dir, ignore_errors=True)


def _check_store_durability(system, data_dir: str) -> list[InvariantResult]:
    """Crash-and-recover every RS shard's engine in place, then compare.

    The committed state is what the engine answers *now* (every write of
    the run completed); the crash is simulated the way the store battery
    does it — drop the handle without close, reopen the directory — so
    recovery runs the real WAL replay path under whatever append/snapshot
    interleaving the faulted network traffic produced.  Sharded profiles
    check each shard's directory and label the results so a failing
    replica is identifiable; single-shard reports keep the historical
    unlabelled names.
    """
    results: list[InvariantResult] = []
    multi = len(system.rs_shards) > 1
    for name, rs in sorted(system.rs_shards.items()):
        committed = dict(rs.store.engine.items("items"))
        # a real crash runs no destructors: abandon the handle, reopen fresh
        recovered_engine = WalEngine(os.path.join(data_dir, name), fsync=False)
        try:
            recovered = dict(recovered_engine.items("items"))
        finally:
            recovered_engine.close()
        rows = check_durability(committed, recovered)
        if multi:
            rows = [
                InvariantResult(row.family, f"{row.name}[{name}]", row.passed, row.detail)
                for row in rows
            ]
        results += rows
    return results


def minimize(
    seed: int,
    profile: str = "default",
    schedule: FaultSchedule | None = None,
) -> tuple[FaultSchedule, ChaosReport]:
    """Shrink a failing run's schedule to a 1-minimal failing fault set.

    Returns ``(minimal_schedule, its_report)``.  When the initial run
    passes, returns it unchanged — nothing to shrink.
    """
    report = run_chaos(seed, profile, schedule)
    if report.passed:
        return (
            schedule
            if schedule is not None
            else FaultSchedule.from_dict(report.schedule),
            report,
        )
    base = schedule if schedule is not None else FaultSchedule.from_dict(report.schedule)

    def still_fails(candidate: FaultSchedule) -> bool:
        return not run_chaos(seed, profile, candidate).passed

    minimal = minimize_schedule(base, still_fails)
    return minimal, run_chaos(seed, profile, minimal)
