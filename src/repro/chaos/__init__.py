"""repro.chaos: deterministic fault injection + invariant checking.

FoundationDB-style discipline for the P3S reproduction: every run is
driven by a seeded :class:`~repro.chaos.schedule.FaultSchedule`
(drop/delay/duplicate/reorder/partition), executed against the real
protocol stack on either substrate — the discrete-event simulator via
:class:`~repro.chaos.inject.SimFaultInjector`, real TCP via
:class:`~repro.chaos.proxy.FaultProxy` — and validated by the invariant
catalogue in :mod:`repro.chaos.invariants` (delivery, privacy,
durability, liveness).  ``repro chaos run --seed N`` replays any run
bit-identically; ``--minimize`` shrinks a failing schedule to a
1-minimal fault set.  See ``docs/CHAOS.md``.
"""

from .inject import SimFaultInjector
from .invariants import (
    InvariantResult,
    check_delivery,
    check_durability,
    check_liveness,
    check_privacy,
)
from .oracle import chaos_schema, expected_deliveries, generate_scenario
from .runner import ChaosReport, minimize, run_chaos
from .schedule import (
    FAULT_KINDS,
    PROFILES,
    Fault,
    FaultSchedule,
    Profile,
    minimize_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "PROFILES",
    "Fault",
    "FaultSchedule",
    "Profile",
    "SimFaultInjector",
    "InvariantResult",
    "ChaosReport",
    "chaos_schema",
    "check_delivery",
    "check_durability",
    "check_liveness",
    "check_privacy",
    "expected_deliveries",
    "generate_scenario",
    "minimize",
    "minimize_schedule",
    "run_chaos",
]
