"""Ground truth for chaos runs: seeded workloads and plaintext oracles.

The invariant checker needs to know what the system *should* have
delivered, computed without any of the machinery under test: the match
oracle evaluates each subscriber's plaintext interests against each
publication's plaintext metadata (``Interest.matches``) and the CP-ABE
policy against the subscriber's attribute set
(``parse_policy(...).satisfied_by``) — the same semantics HVE matching
and CP-ABE decryption implement cryptographically.  Any divergence
between the oracle set and the delivered set is, by construction, a bug
in the encrypted pipeline or the transport, never in the oracle.

Workloads reuse :class:`repro.live.scenario.Scenario`, the
substrate-free episode description, so a chaos workload can run on the
simulator or over TCP unchanged.  Generation draws from
``random.Random(seed)`` only.
"""

from __future__ import annotations

import random

from ..abe.policy import parse_policy
from ..live.scenario import PublicationSpec, Scenario, SubscriberSpec
from ..pbe.schema import AttributeSpec, Interest, MetadataSchema

__all__ = ["chaos_schema", "generate_scenario", "expected_deliveries"]

_ATTRIBUTE_POOL = ("org:acme", "role:analyst")
_POLICIES = (
    "org:acme",
    "role:analyst",
    "org:acme or role:analyst",
    "org:acme and role:analyst",
)


def chaos_schema() -> MetadataSchema:
    """A deliberately small metadata space (2 attributes, 3 vector bits).

    Chaos runs execute the real HVE/CP-ABE pipeline per publication ×
    subscriber; a compact schema keeps a multi-fault run fast without
    changing any protocol path.
    """
    return MetadataSchema(
        [
            AttributeSpec("topic", ("a", "b", "c", "d")),
            AttributeSpec("prio", ("lo", "hi")),
        ]
    )


def generate_scenario(
    seed: int,
    n_subscribers: int = 3,
    n_publications: int = 4,
    schema: MetadataSchema | None = None,
) -> Scenario:
    """A seeded pub/sub episode over :func:`chaos_schema`.

    Subscriber names are ``sub00..subNN`` (the schedule generator's
    ``sub*`` pattern relies on the prefix); payloads are unique per
    publication so delivery multisets compare exactly.
    """
    schema = schema or chaos_schema()
    rng = random.Random(seed)
    topics = schema.attributes[0].values
    prios = schema.attributes[1].values
    subscribers = []
    for i in range(n_subscribers):
        attributes = frozenset(rng.sample(_ATTRIBUTE_POOL, rng.randint(1, 2)))
        constraints: dict[str, str] = {"topic": rng.choice(topics)}
        if rng.random() < 0.4:
            constraints["prio"] = rng.choice(prios)
        subscribers.append(
            SubscriberSpec(f"sub{i:02d}", attributes, (Interest(constraints),))
        )
    publications = []
    for j in range(n_publications):
        metadata = (("prio", rng.choice(prios)), ("topic", rng.choice(topics)))
        publications.append(
            PublicationSpec(
                metadata=metadata,
                payload=f"payload-{j:02d}".encode(),
                policy=rng.choice(_POLICIES),
            )
        )
    return Scenario(subscribers=tuple(subscribers), publications=tuple(publications))


def expected_deliveries(scenario: Scenario) -> dict[str, tuple[bytes, ...]]:
    """The oracle delivery map: plaintext interest match ∧ policy satisfied."""
    expected: dict[str, tuple[bytes, ...]] = {}
    for sub in scenario.subscribers:
        payloads = [
            pub.payload
            for pub in scenario.publications
            if any(interest.matches(pub.metadata_dict) for interest in sub.interests)
            and parse_policy(pub.policy).satisfied_by(set(sub.attributes))
        ]
        expected[sub.name] = tuple(sorted(payloads))
    return expected
