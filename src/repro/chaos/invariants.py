"""The invariant catalogue checked after every chaos run.

Four families, each grounding one of the paper's guarantees against a
faulted execution:

* **delivery** — the delivered multiset equals the plaintext oracle set
  (:mod:`repro.chaos.oracle`): nothing missing, no phantoms, and no
  duplicate deliveries even when the wire duplicated frames;
* **privacy** — the §6.1 visibility claims (reused verbatim from
  :func:`repro.privacy.trace.trace_visibility`) still hold, and
  additionally no payload plaintext sits in RS-persisted state and no
  subscriber identity leaked into RS/PBE-TS observation logs — retries
  and duplicates must not widen what any honest-but-curious component
  sees;
* **durability** — state recovered after a (simulated) crash equals the
  committed pre-crash state, and TTL-expired ciphertext does not
  survive in any store file (composes with :mod:`repro.store.faults`);
* **liveness** — once the fault window closes, every matched
  publication is eventually delivered and the simulation reaches
  quiescence (no protocol process parked forever).

Each check returns :class:`InvariantResult` rows; a run passes iff all
rows pass.  The checks are pure functions of run artifacts so they can
be unit-tested against deliberately broken states (the mutation tests
in ``tests/chaos/``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..privacy.trace import trace_visibility

__all__ = [
    "InvariantResult",
    "check_delivery",
    "check_privacy",
    "check_durability",
    "check_liveness",
    "scan_files_for",
]

DeliveryMap = Mapping[str, tuple[bytes, ...]]


@dataclass(frozen=True)
class InvariantResult:
    """One checked invariant: family, name, verdict, evidence."""

    family: str  # delivery | privacy | durability | liveness
    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }


def _decode(payloads: Iterable[bytes]) -> list[str]:
    return [p.decode("utf-8", "replace") for p in payloads]


# -- delivery ---------------------------------------------------------------


def check_delivery(
    expected: DeliveryMap,
    actual: DeliveryMap,
    delivered_ids: Mapping[str, list[int]] | None = None,
) -> list[InvariantResult]:
    """Delivered multiset == oracle set; no phantoms; no duplicates.

    ``delivered_ids`` maps subscriber → the publication_id of each
    delivery, in delivery order — the duplicate check is per publication
    id, which is stable across runs (GUIDs are randomized per run).
    """
    results: list[InvariantResult] = []
    mismatches = {
        name: {"expected": _decode(expected.get(name, ())), "actual": _decode(got)}
        for name, got in sorted(actual.items())
        if tuple(expected.get(name, ())) != tuple(got)
    }
    results.append(
        InvariantResult(
            "delivery",
            "delivery.matches_oracle",
            not mismatches,
            "delivered sets equal the plaintext oracle" if not mismatches else str(mismatches),
        )
    )
    phantoms = {
        name: _decode(p for p in got if p not in expected.get(name, ()))
        for name, got in sorted(actual.items())
        if any(p not in expected.get(name, ()) for p in got)
    }
    results.append(
        InvariantResult(
            "delivery",
            "delivery.no_phantoms",
            not phantoms,
            "no subscriber received an unmatched payload" if not phantoms else str(phantoms),
        )
    )
    duplicates = {}
    for name, ids in sorted((delivered_ids or {}).items()):
        repeated = sorted({i for i in ids if ids.count(i) > 1})
        if repeated:
            duplicates[name] = repeated
    results.append(
        InvariantResult(
            "delivery",
            "delivery.no_duplicates",
            not duplicates,
            "every publication delivered at most once per subscriber"
            if not duplicates
            else f"publication ids delivered more than once: {duplicates}",
        )
    )
    return results


# -- privacy ----------------------------------------------------------------


def check_privacy(system, payloads: Iterable[bytes]) -> list[InvariantResult]:
    """§6.1 visibility claims + at-rest plaintext + identity-leak scans."""
    results: list[InvariantResult] = []
    report = trace_visibility(system)
    for claim in report.claims:
        results.append(
            InvariantResult(
                "privacy",
                f"privacy.visibility.{claim.component}",
                claim.holds,
                claim.claim if claim.holds else f"{claim.claim} — {claim.evidence}",
            )
        )
    # No payload plaintext in anything any RS shard persisted: the
    # CP-ABE pipeline must keep content sealed even across retried/
    # duplicated submissions and replica handoffs.  Scans raw engine
    # values (framing + ciphertext).
    rs_shards = list(getattr(system, "rs_shards", {"rs": system.rs}).values())
    stored = [
        value
        for rs in rs_shards
        for _key, value in rs.store.engine.items("items")
    ]
    payload_list = list(payloads)
    leaked = sorted(
        _decode(
            payload
            for payload in payload_list
            if payload and any(payload in value for value in stored)
        )
    )
    results.append(
        InvariantResult(
            "privacy",
            "privacy.no_plaintext_at_rs",
            not leaked,
            f"scanned {len(stored)} stored values for {len(payload_list)} payloads"
            if not leaked
            else f"payload plaintext found in RS store: {leaked}",
        )
    )
    # No subscriber identity in the request sources any server logged —
    # anonymization must hold across every retry attempt, not just the
    # first request.
    subscriber_names = set(system.subscribers)
    seen = set(system.pbe_ts.observed_sources)
    for rs in rs_shards:
        seen |= set(rs.observed_sources)
    identified = sorted(subscriber_names & seen)
    results.append(
        InvariantResult(
            "privacy",
            "privacy.no_subscriber_identity_at_servers",
            not system.config.use_anonymizer or not identified,
            f"RS/PBE-TS request sources: {sorted(seen)}"
            if not identified
            else f"subscriber identities reached servers: {identified}",
        )
    )
    return results


# -- durability -------------------------------------------------------------


def scan_files_for(root: str, needle: bytes) -> list[str]:
    """Paths under ``root`` whose raw bytes contain ``needle``."""
    found: list[str] = []
    for directory, _subdirs, files in sorted(os.walk(root)):
        for name in sorted(files):
            path = os.path.join(directory, name)
            with open(path, "rb") as handle:
                if needle in handle.read():
                    found.append(path)
    return found


def check_durability(
    committed: Mapping[bytes, bytes],
    recovered: Mapping[bytes, bytes],
    expired: Iterable[tuple[bytes, bytes]] = (),
    store_root: str | None = None,
) -> list[InvariantResult]:
    """Recovered state == committed state; expired ciphertext truly gone.

    ``committed`` is the key→value map whose writes completed before the
    crash (mirrored at the caller); ``recovered`` is what a fresh engine
    over the same directory reports.  ``expired`` lists
    ``(guid, ciphertext)`` pairs that were garbage-collected before the
    crash — their ciphertext must not be recoverable from any file under
    ``store_root`` (the verified-deletion guarantee, §4.3 "Deletion").
    """
    results: list[InvariantResult] = []
    lost = sorted(key.hex() for key in committed if key not in recovered)
    corrupt = sorted(
        key.hex()
        for key in committed
        if key in recovered and recovered[key] != committed[key]
    )
    results.append(
        InvariantResult(
            "durability",
            "durability.committed_recovered",
            not lost and not corrupt,
            f"all {len(committed)} committed items recovered intact"
            if not lost and not corrupt
            else f"lost: {lost}, corrupt: {corrupt}",
        )
    )
    resurrected = sorted(key.hex() for key in recovered if key not in committed)
    results.append(
        InvariantResult(
            "durability",
            "durability.no_resurrection",
            not resurrected,
            "no deleted/uncommitted key reappeared"
            if not resurrected
            else f"keys resurrected by recovery: {resurrected}",
        )
    )
    if store_root is not None:
        lingering = {
            guid.hex(): scan_files_for(store_root, ciphertext)
            for guid, ciphertext in expired
            if ciphertext and scan_files_for(store_root, ciphertext)
        }
        results.append(
            InvariantResult(
                "durability",
                "durability.expired_ciphertext_absent",
                not lingering,
                "expired ciphertext found in no store file"
                if not lingering
                else f"expired ciphertext still on disk: {lingering}",
            )
        )
    return results


# -- liveness ---------------------------------------------------------------


def check_liveness(
    system,
    expected: DeliveryMap,
    actual: DeliveryMap,
) -> list[InvariantResult]:
    """After the fault window: everything matched delivers, nothing wedges."""
    results: list[InvariantResult] = []
    missing = {
        name: _decode(p for p in payloads if p not in actual.get(name, ()))
        for name, payloads in sorted(expected.items())
        if any(p not in actual.get(name, ()) for p in payloads)
    }
    results.append(
        InvariantResult(
            "liveness",
            "liveness.eventual_delivery",
            not missing,
            "every oracle-matched publication was delivered"
            if not missing
            else f"matched but never delivered: {missing}",
        )
    )
    quiescent = system.sim.quiescent
    results.append(
        InvariantResult(
            "liveness",
            "liveness.quiescent",
            quiescent,
            "simulation reached quiescence (only daemon events remain)"
            if quiescent
            else f"{system.sim.pending_events} events pending, non-daemon work stuck",
        )
    )
    return results
