"""The invariant catalogue checked after every chaos run.

Four families, each grounding one of the paper's guarantees against a
faulted execution:

* **delivery** — the delivered multiset equals the plaintext oracle set
  (:mod:`repro.chaos.oracle`): nothing missing, no phantoms, and no
  duplicate deliveries even when the wire duplicated frames;
* **privacy** — the §6.1 visibility claims (reused verbatim from
  :func:`repro.privacy.trace.trace_visibility`) still hold, and
  additionally no payload plaintext sits in RS-persisted state and no
  subscriber identity leaked into RS/PBE-TS observation logs — retries
  and duplicates must not widen what any honest-but-curious component
  sees;
* **durability** — state recovered after a (simulated) crash equals the
  committed pre-crash state, and TTL-expired ciphertext does not
  survive in any store file (composes with :mod:`repro.store.faults`);
* **liveness** — once the fault window closes, every matched
  publication is eventually delivered and the simulation reaches
  quiescence (no protocol process parked forever);
* **alerting** (opt-in per profile) — the SLO engine's burn-rate alerts
  track the injected faults: every *material* applied fault fires its
  mapped alert family, no alert fires outside the families the applied
  faults can explain (zero alerts on a fault-free run), and every alert
  clears once the system recovers.  This closes the observability loop:
  chaos proves not just that the system survives faults but that the
  alerting surface would have told an operator about them.

Each check returns :class:`InvariantResult` rows; a run passes iff all
rows pass.  The checks are pure functions of run artifacts so they can
be unit-tested against deliberately broken states (the mutation tests
in ``tests/chaos/``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..privacy.trace import trace_visibility

__all__ = [
    "InvariantResult",
    "check_delivery",
    "check_privacy",
    "check_durability",
    "check_liveness",
    "check_alerting",
    "scan_files_for",
]

DeliveryMap = Mapping[str, tuple[bytes, ...]]


@dataclass(frozen=True)
class InvariantResult:
    """One checked invariant: family, name, verdict, evidence."""

    family: str  # delivery | privacy | durability | liveness
    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }


def _decode(payloads: Iterable[bytes]) -> list[str]:
    return [p.decode("utf-8", "replace") for p in payloads]


# -- delivery ---------------------------------------------------------------


def check_delivery(
    expected: DeliveryMap,
    actual: DeliveryMap,
    delivered_ids: Mapping[str, list[int]] | None = None,
) -> list[InvariantResult]:
    """Delivered multiset == oracle set; no phantoms; no duplicates.

    ``delivered_ids`` maps subscriber → the publication_id of each
    delivery, in delivery order — the duplicate check is per publication
    id, which is stable across runs (GUIDs are randomized per run).
    """
    results: list[InvariantResult] = []
    mismatches = {
        name: {"expected": _decode(expected.get(name, ())), "actual": _decode(got)}
        for name, got in sorted(actual.items())
        if tuple(expected.get(name, ())) != tuple(got)
    }
    results.append(
        InvariantResult(
            "delivery",
            "delivery.matches_oracle",
            not mismatches,
            "delivered sets equal the plaintext oracle" if not mismatches else str(mismatches),
        )
    )
    phantoms = {
        name: _decode(p for p in got if p not in expected.get(name, ()))
        for name, got in sorted(actual.items())
        if any(p not in expected.get(name, ()) for p in got)
    }
    results.append(
        InvariantResult(
            "delivery",
            "delivery.no_phantoms",
            not phantoms,
            "no subscriber received an unmatched payload" if not phantoms else str(phantoms),
        )
    )
    duplicates = {}
    for name, ids in sorted((delivered_ids or {}).items()):
        repeated = sorted({i for i in ids if ids.count(i) > 1})
        if repeated:
            duplicates[name] = repeated
    results.append(
        InvariantResult(
            "delivery",
            "delivery.no_duplicates",
            not duplicates,
            "every publication delivered at most once per subscriber"
            if not duplicates
            else f"publication ids delivered more than once: {duplicates}",
        )
    )
    return results


# -- privacy ----------------------------------------------------------------


def check_privacy(system, payloads: Iterable[bytes]) -> list[InvariantResult]:
    """§6.1 visibility claims + at-rest plaintext + identity-leak scans."""
    results: list[InvariantResult] = []
    report = trace_visibility(system)
    for claim in report.claims:
        results.append(
            InvariantResult(
                "privacy",
                f"privacy.visibility.{claim.component}",
                claim.holds,
                claim.claim if claim.holds else f"{claim.claim} — {claim.evidence}",
            )
        )
    # No payload plaintext in anything any RS shard persisted: the
    # CP-ABE pipeline must keep content sealed even across retried/
    # duplicated submissions and replica handoffs.  Scans raw engine
    # values (framing + ciphertext).
    rs_shards = list(getattr(system, "rs_shards", {"rs": system.rs}).values())
    stored = [
        value
        for rs in rs_shards
        for _key, value in rs.store.engine.items("items")
    ]
    payload_list = list(payloads)
    leaked = sorted(
        _decode(
            payload
            for payload in payload_list
            if payload and any(payload in value for value in stored)
        )
    )
    results.append(
        InvariantResult(
            "privacy",
            "privacy.no_plaintext_at_rs",
            not leaked,
            f"scanned {len(stored)} stored values for {len(payload_list)} payloads"
            if not leaked
            else f"payload plaintext found in RS store: {leaked}",
        )
    )
    # No subscriber identity in the request sources any server logged —
    # anonymization must hold across every retry attempt, not just the
    # first request.
    subscriber_names = set(system.subscribers)
    seen = set(system.pbe_ts.observed_sources)
    for rs in rs_shards:
        seen |= set(rs.observed_sources)
    identified = sorted(subscriber_names & seen)
    results.append(
        InvariantResult(
            "privacy",
            "privacy.no_subscriber_identity_at_servers",
            not system.config.use_anonymizer or not identified,
            f"RS/PBE-TS request sources: {sorted(seen)}"
            if not identified
            else f"subscriber identities reached servers: {identified}",
        )
    )
    return results


# -- durability -------------------------------------------------------------


def scan_files_for(root: str, needle: bytes) -> list[str]:
    """Paths under ``root`` whose raw bytes contain ``needle``."""
    found: list[str] = []
    for directory, _subdirs, files in sorted(os.walk(root)):
        for name in sorted(files):
            path = os.path.join(directory, name)
            with open(path, "rb") as handle:
                if needle in handle.read():
                    found.append(path)
    return found


def check_durability(
    committed: Mapping[bytes, bytes],
    recovered: Mapping[bytes, bytes],
    expired: Iterable[tuple[bytes, bytes]] = (),
    store_root: str | None = None,
) -> list[InvariantResult]:
    """Recovered state == committed state; expired ciphertext truly gone.

    ``committed`` is the key→value map whose writes completed before the
    crash (mirrored at the caller); ``recovered`` is what a fresh engine
    over the same directory reports.  ``expired`` lists
    ``(guid, ciphertext)`` pairs that were garbage-collected before the
    crash — their ciphertext must not be recoverable from any file under
    ``store_root`` (the verified-deletion guarantee, §4.3 "Deletion").
    """
    results: list[InvariantResult] = []
    lost = sorted(key.hex() for key in committed if key not in recovered)
    corrupt = sorted(
        key.hex()
        for key in committed
        if key in recovered and recovered[key] != committed[key]
    )
    results.append(
        InvariantResult(
            "durability",
            "durability.committed_recovered",
            not lost and not corrupt,
            f"all {len(committed)} committed items recovered intact"
            if not lost and not corrupt
            else f"lost: {lost}, corrupt: {corrupt}",
        )
    )
    resurrected = sorted(key.hex() for key in recovered if key not in committed)
    results.append(
        InvariantResult(
            "durability",
            "durability.no_resurrection",
            not resurrected,
            "no deleted/uncommitted key reappeared"
            if not resurrected
            else f"keys resurrected by recovery: {resurrected}",
        )
    )
    if store_root is not None:
        lingering = {
            guid.hex(): scan_files_for(store_root, ciphertext)
            for guid, ciphertext in expired
            if ciphertext and scan_files_for(store_root, ciphertext)
        }
        results.append(
            InvariantResult(
                "durability",
                "durability.expired_ciphertext_absent",
                not lingering,
                "expired ciphertext found in no store file"
                if not lingering
                else f"expired ciphertext still on disk: {lingering}",
            )
        )
    return results


# -- alerting ---------------------------------------------------------------

# Applied-fault kind -> the SLOs whose alerts it can legitimately
# explain.  Latency-shaped faults (loss forces a retry cycle,
# delay/reorder stretch frames directly) map to the latency SLO — and,
# should they starve a delivery entirely, to completeness; a duplicated
# frame reaching a subscriber trips GUID dedup (a delivery-integrity
# bad event).  Duplicates elsewhere (DS->RS store, pub->DS publish) are
# absorbed idempotently and map to nothing.
_FAULT_ALERT_SLOS: dict[str, tuple[str, ...]] = {
    "drop": ("delivery_latency", "delivery_completeness"),
    "partition": ("delivery_latency", "delivery_completeness"),
    "delay": ("delivery_latency",),
    "reorder": ("delivery_latency",),
    "duplicate": ("delivery_integrity",),
}


def _explainable_slos(applied_faults: Iterable[Mapping]) -> set:
    """Every SLO some applied fault could legitimately have degraded."""
    may_fire: set = set()
    for entry in applied_faults:
        kind = entry["kind"]
        if kind == "duplicate" and not entry.get("dst", "").startswith("sub"):
            continue  # idempotently absorbed; cannot reach a subscriber's dedup
        may_fire.update(_FAULT_ALERT_SLOS.get(kind, ()))
    return may_fire


def check_alerting(
    slo_report: Mapping,
    applied_faults: list[Mapping],
    schedule: Mapping,
) -> list[InvariantResult]:
    """Burn-rate alerts track the injected faults (see module docstring).

    ``slo_report`` is :meth:`repro.obs.slo.SloEngine.report` output for
    the run's event timeline; ``applied_faults`` is the injector's
    applied summary; ``schedule`` is the run's schedule dict (carried
    for evidence).  Pure in its inputs, so mutation tests can feed
    hand-built states.

    The two directions of the closure:

    * **detection** (``expected_fired``) — whether an injected fault
      *degrades* an SLO depends on seed physics (a dropped frame may be
      retried inside the threshold's headroom; a duplicate may reach a
      non-matching subscriber), but once a mapped SLO records a bad
      event the chaos windows (factor 1, sparse traffic) *guarantee* an
      alert — silence there is an engine bug;
    * **attribution** (``no_spurious``) — every fired alert must be
      explainable by some applied fault; a fault-free run must fire
      nothing.
    """
    may_fire = _explainable_slos(applied_faults)
    slos = slo_report.get("slos", {})
    # detection is owed wherever an explainable SLO actually degraded
    must_fire = {
        slo for slo in may_fire if slos.get(slo, {}).get("bad", 0) > 0
    }
    fired = {alert["slo"] for alert in slo_report.get("alerts", [])}

    results: list[InvariantResult] = []
    silent = sorted(must_fire - fired)
    results.append(
        InvariantResult(
            "alerting",
            "alerting.expected_fired",
            not silent,
            f"every material fault family alerted (fired: {sorted(fired)})"
            if not silent
            else f"material faults fired no alert for: {silent} "
            f"(fired: {sorted(fired)}, applied: {applied_faults})",
        )
    )
    spurious = sorted(fired - may_fire)
    results.append(
        InvariantResult(
            "alerting",
            "alerting.no_spurious",
            not spurious,
            "no alert fired without an applied fault to explain it"
            if not spurious
            else f"alerts fired with no explaining fault: {spurious} "
            f"(applied: {applied_faults})",
        )
    )
    stuck = sorted(
        {
            f"{alert['slo']}:{alert['severity']}:{alert['window']}"
            for alert in slo_report.get("alerts", [])
            if alert.get("cleared_at") is None
        }
    )
    results.append(
        InvariantResult(
            "alerting",
            "alerting.all_cleared",
            not stuck,
            "every fired alert cleared after recovery"
            if not stuck
            else f"alerts still active at end of run: {stuck}",
        )
    )
    return results


# -- liveness ---------------------------------------------------------------


def check_liveness(
    system,
    expected: DeliveryMap,
    actual: DeliveryMap,
) -> list[InvariantResult]:
    """After the fault window: everything matched delivers, nothing wedges."""
    results: list[InvariantResult] = []
    missing = {
        name: _decode(p for p in payloads if p not in actual.get(name, ()))
        for name, payloads in sorted(expected.items())
        if any(p not in actual.get(name, ()) for p in payloads)
    }
    results.append(
        InvariantResult(
            "liveness",
            "liveness.eventual_delivery",
            not missing,
            "every oracle-matched publication was delivered"
            if not missing
            else f"matched but never delivered: {missing}",
        )
    )
    quiescent = system.sim.quiescent
    results.append(
        InvariantResult(
            "liveness",
            "liveness.quiescent",
            quiescent,
            "simulation reached quiescence (only daemon events remain)"
            if quiescent
            else f"{system.sim.pending_events} events pending, non-daemon work stuck",
        )
    )
    return results
