"""Exception hierarchy for the P3S reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own modules so that the
hierarchy is visible in one place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# --------------------------------------------------------------------------
# Cryptographic substrate
# --------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class ParameterError(CryptoError):
    """Invalid or inconsistent cryptographic parameters."""


class NotOnCurveError(CryptoError):
    """A point failed curve-membership validation."""


class DecryptionError(CryptoError):
    """Decryption failed (wrong key, corrupted ciphertext, failed MAC)."""


class IntegrityError(DecryptionError):
    """Authenticated decryption failed its integrity check."""


class SerializationError(CryptoError):
    """Malformed serialized cryptographic object."""


# --------------------------------------------------------------------------
# ABE / PBE schemes
# --------------------------------------------------------------------------

class PolicyError(ReproError):
    """Malformed access-policy expression or policy tree."""


class PolicyNotSatisfiedError(DecryptionError):
    """The attribute set does not satisfy the ciphertext policy."""


class PredicateMismatchError(DecryptionError):
    """A PBE token did not match the ciphertext's attribute vector."""


class GuidMismatchError(DecryptionError):
    """A retrieved payload decrypted, but its embedded GUID does not match
    the requested one (§4.3: the recovered GUID correlates request and
    response; a mismatch is treated as undecodable)."""


class SchemaError(ReproError):
    """Metadata or predicate violates the registered metadata schema."""


# --------------------------------------------------------------------------
# Network / messaging substrate
# --------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for network failures (simulated or live)."""


class TransportError(NetworkError):
    """A transport-level failure: connect/dial errors, timeouts, broken
    or half-closed connections, reconnect budgets exhausted."""


class HandshakeError(TransportError):
    """Secure-channel establishment failed (bad server key, tampered
    hello, certificate/signature rejection, protocol mismatch)."""


class MessageLossError(TransportError):
    """A sequence gap on a secure channel: one or more protected records
    were lost or reordered (§6.1: "participants can detect if network
    failures cause message loss")."""


class ChannelClosedError(NetworkError):
    """Operation on a closed secure channel."""


class RoutingError(NetworkError):
    """No route / unknown host in the simulated network."""


class BrokerError(ReproError):
    """Mini-JMS broker protocol violation."""


# --------------------------------------------------------------------------
# P3S middleware
# --------------------------------------------------------------------------

class P3SError(ReproError):
    """Base class for P3S protocol failures."""


class RegistrationError(P3SError):
    """Participant registration with the ARA failed."""


class CertificateError(P3SError):
    """Invalid, expired, or wrong-role participant certificate."""


class TokenRequestError(P3SError):
    """PBE-TS rejected a token request."""


# --------------------------------------------------------------------------
# Durable storage (repro.store)
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-engine failures."""


class CorruptRecordError(StorageError):
    """A log/snapshot record failed its CRC or framing checks somewhere
    other than the torn tail — the file is damaged, not merely truncated
    by a crash, and recovery refuses to guess past it."""


class RecoveryError(StorageError):
    """Replaying snapshot + log could not reconstruct a consistent state
    (missing snapshot referenced by the manifest, unreadable directory,
    wrong store key)."""


class RetrievalError(P3SError):
    """Repository Server could not satisfy a payload retrieval."""


class ItemExpiredError(RetrievalError):
    """The requested item was deleted by TTL garbage collection."""
