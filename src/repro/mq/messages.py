"""Wire frame types for the mini-JMS broker (ActiveMQ stand-in).

Frame type constants keep broker/client dispatch tables honest; every
frame rides inside a :class:`repro.net.network.Message` whose
``msg_type`` is one of these strings and whose ``payload`` is a
:class:`JmsFrame`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

CONNECT = "jms.connect"
SUBSCRIBE = "jms.subscribe"
UNSUBSCRIBE = "jms.unsubscribe"
PUBLISH = "jms.publish"
DELIVER = "jms.deliver"
ACK = "jms.ack"
# broker→publisher acknowledgement of one PUBLISH carrying a
# "jms-pub-seq" header; the reliable-publish retry loop waits on it
PUBACK = "jms.puback"

FRAME_HEADER_BYTES = 24  # topic id, message id, flags — fixed framing cost

# headers.  The publish sequence header makes a PUBLISH frame
# at-least-once-safe: the broker acks it and dedups redeliveries on
# (src, seq); it is stripped from delivery copies so subscribers never
# see transport bookkeeping.
HDR_PUB_SEQ = "jms-pub-seq"

__all__ = [
    "CONNECT",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "PUBLISH",
    "DELIVER",
    "ACK",
    "PUBACK",
    "HDR_PUB_SEQ",
    "FRAME_HEADER_BYTES",
    "JmsFrame",
]


@dataclass
class JmsFrame:
    """One broker-protocol frame.

    ``body`` is opaque to the broker (in P3S it is always ciphertext);
    ``body_size`` is the body's wire size in bytes.
    """

    topic: str = ""
    body: Any = None
    body_size: int = 0
    message_id: int = 0
    headers: dict[str, Any] = field(default_factory=dict)

    @property
    def wire_size(self) -> int:
        return self.body_size + FRAME_HEADER_BYTES
