"""A topic-based message broker — the ActiveMQ stand-in.

The paper's prototype builds the Dissemination Server "by extending the
AMQ broker" (§5); here :class:`repro.core.ds.DisseminationServer` extends
this class the same way.  Scope is the slice of JMS that P3S exercises:

* client connections (over the TLS-like channel layer),
* durable topic subscriptions,
* publish with fan-out to all current subscribers,
* per-message acknowledgements and delivery accounting.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque

from ..errors import BrokerError
from ..net.channel import SecureChannelLayer
from ..net.network import Host, Message
from . import messages as frames
from .messages import JmsFrame

__all__ = ["Broker"]


class Broker:
    """The broker process on one host.

    Subclasses may override :meth:`on_publish` (used by the P3S DS to
    split metadata fan-out from payload forwarding) and
    :meth:`on_connect`.
    """

    def __init__(self, host: Host):
        self.host = host
        self.channel = SecureChannelLayer(host)
        self.sim = host.network.sim
        self.subscriptions: dict[str, list[str]] = defaultdict(list)
        self.connected_clients: set[str] = set()
        self._message_ids = itertools.count(1)
        self.delivered_count = 0
        self.acked_count = 0
        self.published_count = 0
        self.duplicate_publishes = 0
        # bounded (src, seq) dedup window for acknowledged publishes: a
        # retransmitted PUBLISH whose PUBACK was lost must be re-acked
        # but not re-processed (at-least-once on the wire, exactly-once
        # at the broker)
        self._seen_pub_order: deque[tuple[str, int]] = deque(maxlen=1024)
        self._seen_pubs: set[tuple[str, int]] = set()
        self._started = False
        self.crashed = False

    @property
    def name(self) -> str:
        return self.host.name

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._serve())

    # -- broker loop ----------------------------------------------------------

    def _serve(self):
        while True:
            src, message = yield self.channel.receive()
            if self.crashed:
                continue  # a crashed broker loses in-flight frames
            frame = message.payload
            if message.msg_type == frames.CONNECT:
                self.on_connect(src, frame)
            elif message.msg_type == frames.SUBSCRIBE:
                self._subscribe(src, frame.topic)
            elif message.msg_type == frames.UNSUBSCRIBE:
                self._unsubscribe(src, frame.topic)
            elif message.msg_type == frames.PUBLISH:
                if not self._accept_publish(src, frame):
                    continue
                self.published_count += 1
                self.on_publish(src, frame)
            elif message.msg_type == frames.ACK:
                self.acked_count += 1
            # unknown frames are dropped, as AMQ does for bad destinations

    # -- overridable behaviour ----------------------------------------------------

    def on_connect(self, src: str, frame: JmsFrame) -> None:
        self.connected_clients.add(src)

    def on_publish(self, src: str, frame: JmsFrame) -> None:
        """Default JMS behaviour: fan the frame out to all topic subscribers."""
        self.fan_out(frame.topic, frame)

    # -- reliable publish (PUBACK + dedup) ----------------------------------------

    def _accept_publish(self, src: str, frame: JmsFrame) -> bool:
        """Ack a sequenced PUBLISH and decide whether to process it.

        Reads the sequence with ``get`` — never ``pop`` — because the
        simulator passes the *same frame object* on every client
        retransmission; mutating it here would strip the header from
        the client's future retries.
        """
        seq = frame.headers.get(frames.HDR_PUB_SEQ)
        if seq is None:
            return True  # legacy fire-and-forget publish
        self.channel.send(src, frames.PUBACK, JmsFrame(message_id=seq), 32)
        key = (src, seq)
        if key in self._seen_pubs:
            self.duplicate_publishes += 1
            return False
        if len(self._seen_pub_order) == self._seen_pub_order.maxlen:
            self._seen_pubs.discard(self._seen_pub_order[0])
        self._seen_pub_order.append(key)
        self._seen_pubs.add(key)
        return True

    @staticmethod
    def delivery_headers(frame: JmsFrame) -> dict:
        """Header copy for delivery frames, transport bookkeeping stripped."""
        return {k: v for k, v in frame.headers.items() if k != frames.HDR_PUB_SEQ}

    # -- primitives ------------------------------------------------------------------

    def _subscribe(self, client: str, topic: str) -> None:
        if client not in self.connected_clients:
            raise BrokerError(f"subscribe from unconnected client {client!r}")
        if client not in self.subscriptions[topic]:
            self.subscriptions[topic].append(client)

    def _unsubscribe(self, client: str, topic: str) -> None:
        if client in self.subscriptions[topic]:
            self.subscriptions[topic].remove(client)

    def fan_out(self, topic: str, frame: JmsFrame) -> None:
        """Deliver ``frame`` to every subscriber of ``topic``."""
        delivery = JmsFrame(
            topic=topic,
            body=frame.body,
            body_size=frame.body_size,
            message_id=next(self._message_ids),
            headers=self.delivery_headers(frame),
        )
        for client in self.subscriptions[topic]:
            self.deliver_to(client, delivery)

    def deliver_to(self, client: str, frame: JmsFrame) -> None:
        self.delivered_count += 1
        self.channel.send(client, frames.DELIVER, frame, frame.wire_size)

    def subscriber_count(self, topic: str) -> int:
        return len(self.subscriptions[topic])

    # -- crash / restart (paper §6.1 robustness discussion) --------------------

    def crash(self) -> None:
        """Simulate a broker crash: drop frames, forget volatile state."""
        self.crashed = True
        self.subscriptions.clear()
        self.connected_clients.clear()
        # the dedup window is volatile too: a retransmission accepted
        # twice across a crash is at-least-once, which the subscriber's
        # GUID dedup absorbs
        self._seen_pub_order.clear()
        self._seen_pubs.clear()

    def restart(self) -> None:
        """Come back up; "a restarted DS needs to wait for subscribers and
        publishers to (re)register" (§6.1)."""
        self.crashed = False
