"""JMS-flavoured client API for the mini broker.

The paper keeps "the top level JMS interface, so that existing JMS
compliant publishers and subscribers can take advantage of P3S's privacy
preserving properties without code change" (§5).  This module provides
that JMS-shaped surface — connection / session / producer / consumer with
message listeners — and the P3S client libraries in :mod:`repro.core`
plug in beneath it.

A connection rides on an :class:`~repro.net.rpc.RpcEndpoint` rather than
owning the host's inbox: P3S clients multiplex JMS deliveries (encrypted
metadata) and request-response traffic (token requests, retrievals) over
the same host, exactly as the prototype multiplexes JMS and web-service
calls.

Two extensions beyond the classic JMS slice:

* **multi-broker connections** — one connection may span several brokers
  (the sharded DS cluster of :mod:`repro.cluster`).  Deliveries from any
  of them arrive through the single DELIVER handler (an endpoint can
  register each msg_type only once), SUBSCRIBE fans to every broker, and
  ACKs return to whichever broker delivered the frame.
* **reliable publish** — ``producer.send(..., reliable=True)`` attaches
  a per-connection sequence header, waits for the broker's PUBACK, and
  retransmits with bounded exponential backoff on silence.  Jitter is
  derived from stable identifiers (SHA-256 of client/broker/seq), never
  ambient entropy, so chaos runs stay seed-replayable.  The broker
  dedups on (client, seq), making the upgrade at-least-once on the wire
  and exactly-once at the broker — this closes the documented
  unretried-publish gap in docs/CHAOS.md.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from typing import Any, Callable, Iterable

from ..errors import BrokerError, TransportError
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from ..obs import profile as obs
from . import messages as frames
from .messages import JmsFrame

__all__ = ["JmsConnection", "JmsSession", "MessageProducer", "MessageConsumer"]


def _jitter_rng(*parts: Any) -> random.Random:
    """Deterministic per-(client, broker, seq, attempt) jitter source."""
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class JmsConnection:
    """A client's connection to one broker — or to a shard set of them.

    ``broker_name`` may be a single name or a sequence; the first entry
    stays available as :attr:`broker_name` (the classic single-broker
    attribute, used as the default publish target).
    """

    def __init__(
        self,
        host: Host,
        broker_name: str | Iterable[str],
        endpoint: RpcEndpoint | None = None,
        publish_retries: int = 4,
        puback_timeout_s: float = 1.0,
        publish_backoff_s: float = 0.2,
    ):
        names = (broker_name,) if isinstance(broker_name, str) else tuple(broker_name)
        if not names:
            raise BrokerError("connection needs at least one broker")
        self.host = host
        self.broker_names: list[str] = list(dict.fromkeys(names))
        self.broker_name = self.broker_names[0]
        self.endpoint = endpoint or RpcEndpoint(SecureChannelLayer(host))
        self.sim = host.network.sim
        self.publish_retries = publish_retries
        self.puback_timeout_s = puback_timeout_s
        self.publish_backoff_s = publish_backoff_s
        self._listeners: dict[str, list[Callable[[JmsFrame], None]]] = {}
        self._pub_seq = itertools.count(1)
        self._pending_acks: dict[tuple[str, int], Any] = {}
        self.publish_retransmits = 0
        self.publish_failures = 0
        self._started = False

    @property
    def client_name(self) -> str:
        return self.host.name

    def start(self) -> None:
        """CONNECT to every broker and begin dispatching deliveries."""
        if self._started:
            return
        self._started = True
        self.endpoint.serve(frames.DELIVER, self._on_deliver)
        self.endpoint.serve(frames.PUBACK, self._on_puback)
        self.endpoint.start()
        for broker in self.broker_names:
            self.endpoint.cast(broker, frames.CONNECT, JmsFrame(), 64)

    def add_broker(self, broker: str) -> None:
        """Join a broker that appeared after the connection started
        (a DS shard added by rebalancing): CONNECT, then re-SUBSCRIBE
        every topic this client listens to."""
        if broker in self.broker_names:
            return
        self.broker_names.append(broker)
        if self._started:
            self.endpoint.cast(broker, frames.CONNECT, JmsFrame(), 64)
            for topic in self._listeners:
                self.endpoint.cast(
                    broker, frames.SUBSCRIBE, JmsFrame(topic=topic), 64
                )

    def create_session(self) -> "JmsSession":
        if not self._started:
            raise BrokerError("connection not started")
        return JmsSession(self)

    def reconnect(self) -> None:
        """Re-register with the brokers after a restart (§6.1).

        Re-sends CONNECT plus a SUBSCRIBE for every topic this client
        listens to; a restarted broker rebuilt its registry from scratch.
        """
        if not self._started:
            raise BrokerError("connection not started")
        for broker in self.broker_names:
            self.endpoint.cast(broker, frames.CONNECT, JmsFrame(), 64)
            for topic in self._listeners:
                self.endpoint.cast(
                    broker, frames.SUBSCRIBE, JmsFrame(topic=topic), 64
                )

    # -- internals -------------------------------------------------------------

    def _on_deliver(self, src: str, message) -> None:
        frame: JmsFrame = message.payload
        # remember which broker delivered this copy so the consumer's
        # ACK returns to it, not to the default broker
        frame.delivered_by = src
        for listener in self._listeners.get(frame.topic, []):
            listener(frame)

    def _on_puback(self, src: str, message) -> None:
        ack = self._pending_acks.pop((src, message.payload.message_id), None)
        if ack is not None and not ack.triggered:
            ack.succeed(None)

    def _register_listener(self, topic: str, listener: Callable[[JmsFrame], None]) -> None:
        self._listeners.setdefault(topic, []).append(listener)
        for broker in self.broker_names:
            self.endpoint.cast(broker, frames.SUBSCRIBE, JmsFrame(topic=topic), 64)

    def _send_publish(self, frame: JmsFrame, broker: str | None = None) -> None:
        self.endpoint.cast(
            broker or self.broker_name, frames.PUBLISH, frame, frame.wire_size
        )

    def _send_ack(self, frame: JmsFrame) -> None:
        self.endpoint.cast(
            getattr(frame, "delivered_by", self.broker_name),
            frames.ACK,
            JmsFrame(message_id=frame.message_id),
            32,
        )

    # -- reliable publish ------------------------------------------------------

    def publish_reliable(self, frame: JmsFrame, broker: str | None = None):
        """Generator process: publish ``frame`` and retransmit until the
        broker PUBACKs or the retry budget is spent.

        Yieldable from client protocol processes (``yield
        sim.process(conn.publish_reliable(...))`` returns True/False) or
        spawnable detached.  The sequence header survives retransmission
        because the broker never mutates the frame it receives.
        """
        target = broker or self.broker_name
        seq = next(self._pub_seq)
        frame.headers[frames.HDR_PUB_SEQ] = seq
        for attempt in range(self.publish_retries + 1):
            ack = self.sim.event()
            key = (target, seq)
            self._pending_acks[key] = ack

            def _expire(key=key, ack=ack):
                if self._pending_acks.get(key) is ack and not ack.triggered:
                    del self._pending_acks[key]
                    ack.fail(
                        TransportError(
                            f"{self.client_name}: publish seq {key[1]} to "
                            f"{key[0]} unacknowledged"
                        )
                    )

            # non-daemon, same rationale as RpcEndpoint.call: a parked
            # publisher must hold the run open for its own timeout
            self.sim.schedule(self.puback_timeout_s, _expire)
            if attempt:
                self.publish_retransmits += 1
                obs.record_op("mq.publish_retransmit")
            self.endpoint.cast(target, frames.PUBLISH, frame, frame.wire_size)
            try:
                yield ack
                return True
            except TransportError:
                if attempt < self.publish_retries:
                    backoff = self.publish_backoff_s * (2**attempt)
                    jitter = _jitter_rng(
                        self.client_name, target, seq, attempt
                    ).uniform(0.0, backoff)
                    yield self.sim.timeout(backoff + jitter)
        self.publish_failures += 1
        obs.record_op("mq.publish_failed")
        return False


class JmsSession:
    """Factory for producers and consumers (JMS Session analogue)."""

    def __init__(self, connection: JmsConnection):
        self.connection = connection

    def create_producer(self, topic: str) -> "MessageProducer":
        return MessageProducer(self.connection, topic)

    def create_consumer(self, topic: str) -> "MessageConsumer":
        return MessageConsumer(self.connection, topic)


class MessageProducer:
    """Publishes opaque bodies to one topic."""

    def __init__(self, connection: JmsConnection, topic: str):
        self.connection = connection
        self.topic = topic

    def send(
        self,
        body: Any,
        body_size: int,
        headers: dict[str, Any] | None = None,
        broker: str | None = None,
        reliable: bool = False,
    ):
        """Publish one frame.

        ``broker`` routes to a specific shard (default: the connection's
        first broker).  ``reliable=True`` returns the acked-publish
        generator for the caller's process to drive (or to hand to
        ``sim.process``); the plain path stays a fire-and-forget cast.
        """
        frame = JmsFrame(
            topic=self.topic, body=body, body_size=body_size, headers=headers or {}
        )
        if reliable:
            return self.connection.publish_reliable(frame, broker=broker)
        self.connection._send_publish(frame, broker=broker)
        return None


class MessageConsumer:
    """Receives deliveries for one topic via a message listener."""

    def __init__(self, connection: JmsConnection, topic: str):
        self.connection = connection
        self.topic = topic
        self._listener: Callable[[JmsFrame], None] | None = None

    def set_message_listener(self, listener: Callable[[JmsFrame], None]) -> None:
        if self._listener is not None:
            raise BrokerError("consumer already has a listener")
        self._listener = listener
        self.connection._register_listener(self.topic, self._on_frame)

    def _on_frame(self, frame: JmsFrame) -> None:
        self.connection._send_ack(frame)
        if self._listener is not None:
            self._listener(frame)
