"""JMS-flavoured client API for the mini broker.

The paper keeps "the top level JMS interface, so that existing JMS
compliant publishers and subscribers can take advantage of P3S's privacy
preserving properties without code change" (§5).  This module provides
that JMS-shaped surface — connection / session / producer / consumer with
message listeners — and the P3S client libraries in :mod:`repro.core`
plug in beneath it.

A connection rides on an :class:`~repro.net.rpc.RpcEndpoint` rather than
owning the host's inbox: P3S clients multiplex JMS deliveries (encrypted
metadata) and request-response traffic (token requests, retrievals) over
the same host, exactly as the prototype multiplexes JMS and web-service
calls.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BrokerError
from ..net.channel import SecureChannelLayer
from ..net.network import Host
from ..net.rpc import RpcEndpoint
from . import messages as frames
from .messages import JmsFrame

__all__ = ["JmsConnection", "JmsSession", "MessageProducer", "MessageConsumer"]


class JmsConnection:
    """A client's connection to one broker."""

    def __init__(self, host: Host, broker_name: str, endpoint: RpcEndpoint | None = None):
        self.host = host
        self.broker_name = broker_name
        self.endpoint = endpoint or RpcEndpoint(SecureChannelLayer(host))
        self.sim = host.network.sim
        self._listeners: dict[str, list[Callable[[JmsFrame], None]]] = {}
        self._started = False

    @property
    def client_name(self) -> str:
        return self.host.name

    def start(self) -> None:
        """CONNECT to the broker and begin dispatching deliveries."""
        if self._started:
            return
        self._started = True
        self.endpoint.serve(frames.DELIVER, self._on_deliver)
        self.endpoint.start()
        self.endpoint.cast(self.broker_name, frames.CONNECT, JmsFrame(), 64)

    def create_session(self) -> "JmsSession":
        if not self._started:
            raise BrokerError("connection not started")
        return JmsSession(self)

    def reconnect(self) -> None:
        """Re-register with the broker after it restarted (§6.1).

        Re-sends CONNECT plus a SUBSCRIBE for every topic this client
        listens to; the broker rebuilt its registry from scratch.
        """
        if not self._started:
            raise BrokerError("connection not started")
        self.endpoint.cast(self.broker_name, frames.CONNECT, JmsFrame(), 64)
        for topic in self._listeners:
            self.endpoint.cast(self.broker_name, frames.SUBSCRIBE, JmsFrame(topic=topic), 64)

    # -- internals -------------------------------------------------------------

    def _on_deliver(self, src: str, message) -> None:
        frame: JmsFrame = message.payload
        for listener in self._listeners.get(frame.topic, []):
            listener(frame)

    def _register_listener(self, topic: str, listener: Callable[[JmsFrame], None]) -> None:
        self._listeners.setdefault(topic, []).append(listener)
        self.endpoint.cast(self.broker_name, frames.SUBSCRIBE, JmsFrame(topic=topic), 64)

    def _send_publish(self, frame: JmsFrame) -> None:
        self.endpoint.cast(self.broker_name, frames.PUBLISH, frame, frame.wire_size)

    def _send_ack(self, frame: JmsFrame) -> None:
        self.endpoint.cast(
            self.broker_name, frames.ACK, JmsFrame(message_id=frame.message_id), 32
        )


class JmsSession:
    """Factory for producers and consumers (JMS Session analogue)."""

    def __init__(self, connection: JmsConnection):
        self.connection = connection

    def create_producer(self, topic: str) -> "MessageProducer":
        return MessageProducer(self.connection, topic)

    def create_consumer(self, topic: str) -> "MessageConsumer":
        return MessageConsumer(self.connection, topic)


class MessageProducer:
    """Publishes opaque bodies to one topic."""

    def __init__(self, connection: JmsConnection, topic: str):
        self.connection = connection
        self.topic = topic

    def send(self, body: Any, body_size: int, headers: dict[str, Any] | None = None) -> None:
        frame = JmsFrame(
            topic=self.topic, body=body, body_size=body_size, headers=headers or {}
        )
        self.connection._send_publish(frame)


class MessageConsumer:
    """Receives deliveries for one topic via a message listener."""

    def __init__(self, connection: JmsConnection, topic: str):
        self.connection = connection
        self.topic = topic
        self._listener: Callable[[JmsFrame], None] | None = None

    def set_message_listener(self, listener: Callable[[JmsFrame], None]) -> None:
        if self._listener is not None:
            raise BrokerError("consumer already has a listener")
        self._listener = listener
        self.connection._register_listener(self.topic, self._on_frame)

    def _on_frame(self, frame: JmsFrame) -> None:
        self.connection._send_ack(frame)
        if self._listener is not None:
            self._listener(frame)
