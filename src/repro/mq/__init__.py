"""Mini-JMS message broker and client API (ActiveMQ stand-in)."""

from .messages import ACK, CONNECT, DELIVER, FRAME_HEADER_BYTES, PUBLISH, SUBSCRIBE, UNSUBSCRIBE, JmsFrame
from .broker import Broker
from .client import JmsConnection, JmsSession, MessageConsumer, MessageProducer

__all__ = [
    "Broker",
    "JmsConnection",
    "JmsSession",
    "MessageProducer",
    "MessageConsumer",
    "JmsFrame",
    "FRAME_HEADER_BYTES",
    "CONNECT",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "PUBLISH",
    "DELIVER",
    "ACK",
]
