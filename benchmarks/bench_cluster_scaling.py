"""PR-8 cluster scaling: delivered publications/second vs DS shard count.

The broker's serialized resource in the simulator is its egress
interface: every P_E envelope fanned out to every matching subscriber
queues on the one DS NIC (Table 1's ℬ).  Sharding the DS tier gives the
deployment K independent egress interfaces and routes each publication
(by GUID) to exactly one of them — so aggregate delivery throughput
should scale near-linearly in K until some unsharded stage (publisher
uplink, anonymizer, fixed pipeline latency) dominates.

Workload: 8 matching subscribers, 36 publications on the paper's 40-bit
metadata schema, DS→subscriber links pinned to 1 Mb/s so the envelope
fan-out is the bottleneck; RS tier fixed at 2 shards, replication 2.
Throughput = total application deliveries / simulated makespan.

Run with ``-s`` for the table; ``P3S_WRITE_BENCH=1`` writes
``BENCH_pr8.json`` at the repo root (the committed record).
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.config import P3SConfig
from repro.core.system import P3SSystem
from repro.pbe.schema import Interest

SUBSCRIBERS = 8
PUBLICATIONS = 36
DS_LINK_BPS = 1_000_000  # the constrained broker egress (per subscriber link)
PAYLOAD = b"x" * 256
SHARD_COUNTS = (1, 2, 4)

# near-linear, with headroom for the binomial GUID split: 36 random
# GUIDs over 2 shards occasionally land ~22/14, capping the measured
# speedup at ~36/22; the committed BENCH_pr8.json records a typical run
MIN_SPEEDUP_2_SHARDS = 1.45


def _metadata() -> dict[str, str]:
    meta = {f"attr{i:02d}": "v00" for i in range(10)}
    meta["attr00"] = "v01"
    return meta


def _run_topology(ds_shards: int) -> dict:
    """One full episode; returns deliveries, sim makespan, and throughput."""
    system = P3SSystem(
        P3SConfig(ds_shards=ds_shards, rs_shards=2, rs_replication=2)
    )
    try:
        for i in range(SUBSCRIBERS):
            subscriber = system.add_subscriber(f"sub{i:02d}", {"org"})
            # cover the DS-egress skew between a subscriber's envelope and
            # the queued DS→RS payload forward: the race costs retries,
            # never deliveries
            subscriber.retrieval_retries = 60
            subscriber.retry_delay_s = 0.2
            system.subscribe(subscriber, Interest({"attr00": "v01"}))
        system.run()
        for ds in system.ds_shards.values():
            for name in system.subscribers:
                ds.host.set_link_bandwidth(name, DS_LINK_BPS)
        publisher = system.add_publisher("pub")
        started = system.now
        for _ in range(PUBLICATIONS):
            publisher.publish(_metadata(), PAYLOAD, policy="org")
        system.run()
        makespan = system.now - started
        delivered = sum(
            len(s.stats.deliveries) for s in system.subscribers.values()
        )
        failed = sum(s.stats.failed_fetches for s in system.subscribers.values())
        return {
            "ds_shards": ds_shards,
            "deliveries": delivered,
            "failed_fetches": failed,
            "sim_makespan_s": makespan,
            "deliveries_per_s": delivered / makespan,
        }
    finally:
        system.close()


def test_ds_sharding_scales_delivery_throughput(capsys):
    rows = [_run_topology(k) for k in SHARD_COUNTS]
    base = rows[0]["deliveries_per_s"]
    for row in rows:
        row["speedup"] = row["deliveries_per_s"] / base

    with capsys.disabled():
        print(
            f"\ncluster scaling ({SUBSCRIBERS} subscribers x "
            f"{PUBLICATIONS} publications, DS links {DS_LINK_BPS / 1e6:.0f} Mb/s):"
        )
        for row in rows:
            print(
                f"  {row['ds_shards']} DS shard(s): "
                f"{row['deliveries_per_s']:7.1f} deliveries/s "
                f"(makespan {row['sim_makespan_s']:6.3f} s, "
                f"x{row['speedup']:.2f})"
            )

    # the claims the numbers must back, whatever the machine:
    expected = SUBSCRIBERS * PUBLICATIONS
    for row in rows:
        assert row["deliveries"] == expected  # sharding never loses a delivery
        assert row["failed_fetches"] == 0  # retries absorb the store race
    by_shards = {row["ds_shards"]: row for row in rows}
    assert by_shards[2]["speedup"] >= MIN_SPEEDUP_2_SHARDS
    assert by_shards[4]["speedup"] > by_shards[2]["speedup"]  # still climbing at 4

    if os.environ.get("P3S_WRITE_BENCH"):
        target = pathlib.Path(__file__).resolve().parents[1] / "BENCH_pr8.json"
        target.write_text(
            json.dumps(
                {
                    "workload": {
                        "subscribers": SUBSCRIBERS,
                        "publications": PUBLICATIONS,
                        "payload_bytes": len(PAYLOAD),
                        "ds_subscriber_link_bps": DS_LINK_BPS,
                        "rs_shards": 2,
                        "rs_replication": 2,
                    },
                    "scaling": rows,
                },
                indent=2,
            )
            + "\n"
        )
