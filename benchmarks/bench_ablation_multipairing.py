"""Ablation: shared-final-exponentiation multi-pairing vs naive products.

HVE matching evaluates a product of 2·|non-wildcard| pairings.  The
multi-pairing shares the accumulator squaring and the final
exponentiation across all pairs (DESIGN.md §5); this bench quantifies the
speedup on exactly the pairing workload of one 20-position match.
"""

import pytest

from repro.crypto.group import PairingGroup
from repro.crypto.pairing import multi_pairing, tate_pairing

PAIR_COUNT = 40  # 2 pairings × 20 non-wildcard positions


@pytest.fixture(scope="module")
def pairs():
    group = PairingGroup("TOY")
    return group, [(group.random_g1(), group.random_g1()) for _ in range(PAIR_COUNT)]


def naive_product(group, pairs):
    result = group.gt_identity()
    for p, q in pairs:
        result = result * tate_pairing(p, q)
    return result


def shared_product(group, pairs):
    return multi_pairing(pairs, group.params)


def test_naive_pairing_product(pairs, benchmark):
    group, pair_list = pairs
    benchmark(naive_product, group, pair_list)


def test_multi_pairing_product(pairs, benchmark):
    group, pair_list = pairs
    benchmark(shared_product, group, pair_list)


def test_equivalence_and_speedup(pairs, capsys):
    """The two evaluations agree; the shared version must win."""
    import time

    group, pair_list = pairs
    assert naive_product(group, pair_list) == shared_product(group, pair_list)

    start = time.perf_counter()
    naive_product(group, pair_list)
    naive_s = time.perf_counter() - start
    start = time.perf_counter()
    shared_product(group, pair_list)
    shared_s = time.perf_counter() - start
    with capsys.disabled():
        print(
            f"\nmulti-pairing ablation ({PAIR_COUNT} pairs): naive={naive_s*1e3:.1f} ms, "
            f"shared={shared_s*1e3:.1f} ms, speedup={naive_s/shared_s:.2f}×"
        )
    assert shared_s < naive_s
