"""Ablation: binary HVE (paper's choice) vs q-ary large-alphabet variant.

The paper encodes N attributes of ≤2^b values over b·N binary positions
(§3.1); the Boneh-Waters line supports large alphabets natively.  Our
prime-order q-ary generalization trades public-key size for fewer
pairings per match — this bench quantifies the match-time and
ciphertext-size difference on the Table 1 metadata shape (10 attributes
× 16 values: 40 binary positions vs 10 q-ary positions).
"""

import pytest

from repro.crypto.group import PairingGroup
from repro.pbe import AttributeSpec, Interest, MetadataSchema
from repro.pbe.hve import HVE
from repro.pbe.qary import QaryHVE

GROUP = PairingGroup("TOY")
SCHEMA = MetadataSchema(
    [AttributeSpec(f"a{i}", tuple(f"v{j}" for j in range(16))) for i in range(10)]
)
METADATA = {f"a{i}": f"v{i % 16}" for i in range(10)}
INTEREST = Interest({f"a{i}": f"v{i % 16}" for i in range(5)})  # 5 constrained attrs
GUID = b"guid-0123456789ab"


@pytest.fixture(scope="module")
def binary_setting():
    hve = HVE(GROUP)
    public, master = hve.setup(SCHEMA.vector_length)
    ciphertext = hve.encrypt(public, SCHEMA.encode_metadata(METADATA), GUID)
    token = hve.gen_token(master, SCHEMA.encode_interest(INTEREST))
    return hve, ciphertext, token


@pytest.fixture(scope="module")
def qary_setting():
    hve = QaryHVE(GROUP)
    public, master = hve.setup(QaryHVE.sizes_for_schema(SCHEMA))
    ciphertext = hve.encrypt_metadata(public, SCHEMA, METADATA, GUID)
    token = hve.token_for_interest(master, SCHEMA, INTEREST)
    return hve, ciphertext, token


def test_binary_match(binary_setting, benchmark):
    hve, ciphertext, token = binary_setting
    assert benchmark(lambda: hve.query(token, ciphertext)) == GUID


def test_qary_match(qary_setting, benchmark):
    hve, ciphertext, token = qary_setting
    assert benchmark(lambda: hve.query(token, ciphertext)) == GUID


def test_size_and_pairing_comparison(binary_setting, qary_setting, capsys):
    _, binary_ct, binary_token = binary_setting
    _, qary_ct, qary_token = qary_setting
    binary_pairings = 2 * len(binary_token.positions)
    qary_pairings = 2 * len(qary_token.positions)
    with capsys.disabled():
        print(
            f"\nq-ary ablation (10 attrs × 16 values, 5 constrained):\n"
            f"  binary: {binary_ct.n} positions, {binary_pairings} pairings/match\n"
            f"  q-ary : {qary_ct.n} positions, {qary_pairings} pairings/match "
            f"({binary_pairings / qary_pairings:.0f}× fewer)"
        )
    assert binary_ct.n == 40
    assert qary_ct.n == 10
    assert qary_pairings * 4 == binary_pairings
