"""Ablation: hybrid (KEM-DEM) CP-ABE vs per-chunk direct encryption.

The paper CP-ABE-encrypts ``(GUID, payload)``; like the cpabe toolkit we
do this hybrid (one ABE operation wraps a symmetric session key).  The
alternative — running the full ABE encryption once per small chunk of
payload — pays the pairing-group cost per chunk.  This bench shows why
hybrid is the only sensible default as payloads grow.
"""

import pytest

from repro.abe.bsw07 import CPABE
from repro.abe.hybrid import HybridCPABE
from repro.crypto.group import PairingGroup

POLICY = "org:acme and role:analyst"
CHUNKS = 4  # chunks for the non-hybrid strawman


@pytest.fixture(scope="module")
def setting():
    group = PairingGroup("TOY")
    hybrid = HybridCPABE(group)
    public, master = hybrid.setup()
    key = hybrid.keygen(master, {"org:acme", "role:analyst"})
    return group, hybrid, public, master, key


def test_hybrid_encrypt_16k(setting, benchmark):
    _, hybrid, public, _, _ = setting
    payload = b"\x11" * 16384
    ciphertext = benchmark(lambda: hybrid.encrypt(public, payload, POLICY))
    assert len(ciphertext.sealed) > len(payload)


def test_direct_encrypt_per_chunk(setting, benchmark):
    """Strawman: one full ABE operation per chunk (no session key)."""
    group, hybrid, public, _, _ = setting
    abe = CPABE(group)

    def per_chunk():
        return [abe.encrypt(public, group.random_gt(), POLICY) for _ in range(CHUNKS)]

    ciphertexts = benchmark(per_chunk)
    assert len(ciphertexts) == CHUNKS


def test_hybrid_wins_and_roundtrips(setting, capsys):
    import time

    group, hybrid, public, _, key = setting
    payload = b"\x11" * 16384

    start = time.perf_counter()
    ciphertext = hybrid.encrypt(public, payload, POLICY)
    hybrid_s = time.perf_counter() - start
    assert hybrid.decrypt(key, ciphertext) == payload

    abe = CPABE(group)
    start = time.perf_counter()
    for _ in range(CHUNKS):
        abe.encrypt(public, group.random_gt(), POLICY)
    direct_s = time.perf_counter() - start

    with capsys.disabled():
        print(
            f"\nhybrid ablation (16 KiB payload): hybrid={hybrid_s*1e3:.1f} ms, "
            f"{CHUNKS}-chunk direct={direct_s*1e3:.1f} ms "
            f"(direct scales with payload; hybrid pays one ABE op)"
        )
    assert hybrid_s < direct_s
