"""Extension: hierarchical dissemination (paper §6.2's proposed fix).

"P3S performs worse than the baseline for small payloads.  This issue can
be addressed by reconfiguring the P3S architecture to use hierarchical
dissemination."  The model moves the metadata fan-out from a flat
N_s-wide DS broadcast onto a k-ary relay tree; the per-node egress cost
drops from P_E·N_s to P_E·k.
"""

from repro.perf.params import MESSAGE_SIZES, PAPER_PARAMS
from repro.perf.report import series_table
from repro.perf.throughput import p3s_throughput, throughput_ratio


def _ratios(relay_fanout):
    return [
        throughput_ratio(m, PAPER_PARAMS, relay_fanout=relay_fanout) for m in MESSAGE_SIZES
    ]


def test_hierarchical_dissemination(benchmark, capsys):
    flat, tree4, tree10 = benchmark(
        lambda: (_ratios(None), _ratios(4), _ratios(10))
    )
    with capsys.disabled():
        print()
        print(
            series_table(
                MESSAGE_SIZES,
                {"flat(b)": flat, "k=4": tree4, "k=10": tree10},
                formatters={"flat(b)": ".3f", "k=4": ".3f", "k=10": ".3f"},
                title="Extension — throughput ratio with hierarchical dissemination, f = 5%",
            )
        )

    # relays strictly help in the broadcast-bound (small payload) regime;
    # a lower fanout loads each node less, so k=4 beats k=10 beats flat
    assert tree4[0] > tree10[0] > flat[0]
    # with k=10 relays the 10KB point reaches parity-like territory
    assert tree10[2] > 0.4
    # and the large-payload regime is unaffected (RS-egress bound)
    assert abs(tree10[-1] - flat[-1]) < 1e-9


def test_bottleneck_shifts_with_fanout(benchmark, capsys):
    def bottlenecks():
        return {
            k: p3s_throughput(1_000, PAPER_PARAMS, relay_fanout=k).bottleneck
            for k in (2, 10, 50, None)
        }

    result = benchmark(bottlenecks)
    with capsys.disabled():
        print(f"\nbottleneck by fanout at m=1KB: {result}")
    # with a small enough fanout the broadcast stops being the bottleneck
    assert result[2] != "r1_ds_broadcast"
    assert result[None] == "r1_ds_broadcast"
