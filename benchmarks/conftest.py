"""Shared fixtures for the benchmark harness.

Benchmarks print the paper-style tables (run with ``-s`` to see them, or
read EXPERIMENTS.md for a captured transcript).  Heavyweight calibration
is session-scoped.

Environment knobs:

* ``REPRO_BENCH_PARAMS`` — pairing parameter set for the crypto
  calibration benches (default ``TOY``; set ``PAPER`` for the full-size
  512-bit measurement — slower but directly comparable to the paper's
  prototype constants).
"""

import os

import pytest

from repro.perf.calibrate import calibrate

from schema import write_repo_bench


@pytest.fixture()
def bench_writer():
    """The shared v1-schema bench writer (see benchmarks/schema.py).

    Benches call ``bench_writer(filename, suite, records, workload=...,
    seed=...)``; nothing is written unless ``P3S_WRITE_BENCH=1``, and
    anything written is the versioned record `repro perf gate` ingests.
    """
    return write_repo_bench


def param_set_name() -> str:
    return os.environ.get("REPRO_BENCH_PARAMS", "TOY")


@pytest.fixture(scope="session")
def toy_calibration():
    """Calibration at TOY with the paper's 40-bit metadata space."""
    return calibrate("TOY", vector_bits=40, policy_attributes=10, repetitions=1)


@pytest.fixture(scope="session")
def bench_calibration():
    """Calibration at the set selected by REPRO_BENCH_PARAMS."""
    return calibrate(param_set_name(), vector_bits=40, policy_attributes=10, repetitions=1)
