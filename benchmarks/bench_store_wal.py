"""PR-6 storage layer: append/fsync throughput, recovery time, GC cost.

What does durability cost, and what does recovery buy back?  Three
measurements over real files in a temp directory:

* **append throughput** — WAL puts/second with ``fsync=True`` (the
  committed-on-return guarantee) vs ``fsync=False`` (OS page cache) vs
  the SQLite backend.  The fsync column is the price of "a put that
  returned survives ``kill -9``";
* **recovery time vs log size** — time to open a store whose log holds
  N unsnapshotted records, and the same store after ``compact()``
  (recovery then reads one snapshot and an empty log — the
  ``snapshot_every`` bound in action);
* **GC sweep cost** — one ``collect_garbage`` over a store of mostly
  live items: the expiry min-heap sweep vs the pre-heap full scan
  (reproduced inline), at growing store sizes.

Run with ``-s`` for the table; ``P3S_WRITE_BENCH=1`` writes
``BENCH_pr6.json`` at the repo root (the committed record).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core.messages import PayloadSubmission
from repro.core.rs import RepositoryStore
from repro.store import SqliteEngine, WalEngine

APPEND_RECORDS = 300
VALUE_BYTES = 512
RECOVERY_SIZES = (256, 1024, 4096)
GC_SIZES = (1_000, 10_000, 50_000)
GC_EXPIRED = 20


def _bench_appends(tmp_path) -> dict:
    value = os.urandom(VALUE_BYTES)
    results = {}
    for label, factory in (
        ("wal_fsync", lambda p: WalEngine(p, fsync=True, snapshot_every=0)),
        ("wal_nofsync", lambda p: WalEngine(p, fsync=False, snapshot_every=0)),
        ("sqlite", lambda p: SqliteEngine(p + ".db")),
    ):
        engine = factory(str(tmp_path / label))
        start = time.perf_counter()
        for index in range(APPEND_RECORDS):
            engine.put("items", index.to_bytes(8, "big"), value)
        elapsed = time.perf_counter() - start
        engine.close()
        results[label] = {
            "records": APPEND_RECORDS,
            "value_bytes": VALUE_BYTES,
            "seconds": elapsed,
            "records_per_s": APPEND_RECORDS / elapsed,
        }
    return results


def _bench_recovery(tmp_path) -> list[dict]:
    value = os.urandom(128)
    rows = []
    for size in RECOVERY_SIZES:
        path = str(tmp_path / f"recover-{size}")
        with WalEngine(path, fsync=False, snapshot_every=0) as engine:
            for index in range(size):
                engine.put("items", index.to_bytes(8, "big"), value)
        start = time.perf_counter()
        engine = WalEngine(path, fsync=False, snapshot_every=0)
        replay_s = time.perf_counter() - start
        assert engine.recovery.log_records_replayed == size
        engine.compact()
        engine.close()
        start = time.perf_counter()
        engine = WalEngine(path, fsync=False, snapshot_every=0)
        snapshot_s = time.perf_counter() - start
        assert engine.recovery.log_records_replayed == 0
        engine.close()
        rows.append(
            {
                "log_records": size,
                "replay_open_s": replay_s,
                "post_compaction_open_s": snapshot_s,
                "speedup": replay_s / snapshot_s if snapshot_s else float("inf"),
            }
        )
    return rows


def _naive_sweep(items: dict, now: float) -> int:
    """The pre-heap GC: examine every live item on every sweep."""
    expired = [guid for guid, expires_at in items.items() if expires_at <= now]
    for guid in expired:
        del items[guid]
    return len(expired)


def _bench_gc(sizes=GC_SIZES) -> list[dict]:
    rows = []
    for size in sizes:
        store = RepositoryStore(t_g=0.0)
        naive: dict[bytes, float] = {}
        for index in range(size):
            guid = index.to_bytes(8, "big")
            store.store(PayloadSubmission(guid=guid, ciphertext=b"ct", ttl_s=1e9), now=0.0)
            naive[guid] = 1e9
        for index in range(GC_EXPIRED):
            guid = b"dead-%06d" % index
            store.store(PayloadSubmission(guid=guid, ciphertext=b"ct", ttl_s=1.0), now=0.0)
            naive[guid] = 1.0
        start = time.perf_counter()
        removed_heap = store.collect_garbage(now=10.0)
        heap_s = time.perf_counter() - start
        start = time.perf_counter()
        removed_naive = _naive_sweep(naive, now=10.0)
        naive_s = time.perf_counter() - start
        assert removed_heap == removed_naive == GC_EXPIRED
        rows.append(
            {
                "live_items": size,
                "expired": GC_EXPIRED,
                "heap_sweep_s": heap_s,
                "heap_examined": store.last_gc_examined,
                "full_scan_s": naive_s,
                "full_scan_examined": size + GC_EXPIRED,
                "speedup": naive_s / heap_s if heap_s else float("inf"),
            }
        )
    return rows


def test_bench_store_wal(tmp_path):
    appends = _bench_appends(tmp_path)
    recovery = _bench_recovery(tmp_path)
    gc = _bench_gc()

    print()
    print("append throughput (512-byte values):")
    for label, row in appends.items():
        print(f"  {label:12s} {row['records_per_s']:10.0f} rec/s")
    print("recovery open time:")
    for row in recovery:
        print(
            f"  {row['log_records']:6d} log records: replay {row['replay_open_s'] * 1e3:7.1f} ms, "
            f"after compaction {row['post_compaction_open_s'] * 1e3:7.1f} ms "
            f"({row['speedup']:.1f}x)"
        )
    print(f"gc sweep ({GC_EXPIRED} expired):")
    for row in gc:
        print(
            f"  {row['live_items']:6d} live: heap {row['heap_sweep_s'] * 1e6:8.1f} us "
            f"({row['heap_examined']} examined) vs full scan "
            f"{row['full_scan_s'] * 1e6:8.1f} us ({row['full_scan_examined']} examined)"
        )

    # the claims the numbers must back, whatever the machine:
    assert appends["wal_nofsync"]["records_per_s"] > appends["wal_fsync"]["records_per_s"]
    assert all(row["heap_examined"] == GC_EXPIRED for row in gc)

    if os.environ.get("P3S_WRITE_BENCH"):
        target = pathlib.Path(__file__).resolve().parents[1] / "BENCH_pr6.json"
        target.write_text(
            json.dumps(
                {
                    "workload": {
                        "append_records": APPEND_RECORDS,
                        "value_bytes": VALUE_BYTES,
                        "gc_expired": GC_EXPIRED,
                    },
                    "append_throughput": appends,
                    "recovery_open": recovery,
                    "gc_sweep": gc,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {target}")
