"""PR-10 profiler tax: what does continuous profiling cost on the demo
pipeline?

The seeded demo workload (``repro.obs.prof.workload``) runs the full
publish → match → deliver pipeline under three profiling modes:

* **off** — observability installed, no profiler attached;
* **det** — :class:`DeterministicSampler` (op-count sampling, the
  simulator mode) at ``every=8``;
* **wall** — :class:`StackSampler` at the live-plane default 19 Hz.

Modes run interleaved (off/det/wall, repeated) so CPU frequency drift
hits all three equally; best-of-``REPEATS`` is scored.  The claims:

1. deterministic sampling recovers ≥95% of profiler-off throughput (the
   ISSUE's "within 5%" bound — op counting is just an integer divide per
   instrumented op);
2. the wall sampler at 19 Hz recovers ≥80% (it burns a whole extra
   thread's worth of ``sys._current_frames()`` walks, but at 19 Hz that
   is a few hundred stack walks over the whole run);
3. deterministic mode replays byte-identically for the pinned seed.

``P3S_WRITE_BENCH=1`` writes ``BENCH_pr10.json`` at the repo root in
the versioned schema — the committed baseline ``repro perf gate``'s
``prof`` probe compares against.
"""

from __future__ import annotations

import time

from schema import BenchRecord

from repro.obs.observability import Observability
from repro.obs.prof.sampler import DeterministicSampler, StackSampler
from repro.obs.prof.workload import run_demo_workload

PUBLICATIONS = 30
SEED = 7
EVERY = 8
WALL_HZ = 19.0
REPEATS = 3
DET_RECOVERY_FLOOR = 0.95  # ISSUE: deterministic profiling within 5% of off
WALL_RECOVERY_FLOOR = 0.80


def _make_profiler(mode: str, obs: Observability):
    if mode == "det":
        return DeterministicSampler(every=EVERY, seed=SEED, obs=obs)
    if mode == "wall":
        return StackSampler(hz=WALL_HZ, obs=obs)
    return None


def _run_once(mode: str) -> dict:
    obs = Observability()
    profiler = _make_profiler(mode, obs)
    if profiler is not None:
        obs.profiler = profiler
        profiler.start()
    start = time.perf_counter()
    stats = run_demo_workload(PUBLICATIONS, seed=SEED, obs=obs)
    elapsed = time.perf_counter() - start
    if profiler is not None:
        profiler.stop()
    return {
        "seconds": elapsed,
        "publications_per_s": PUBLICATIONS / elapsed,
        "delivered": stats["delivered"],
        "profile": None if profiler is None else profiler.profile(),
    }


def test_bench_prof_overhead(bench_writer):
    modes = ("off", "det", "wall")
    best: dict[str, dict] = {}
    for _ in range(REPEATS):
        for mode in modes:  # interleaved: frequency drift hits all modes
            result = _run_once(mode)
            if mode not in best or result["seconds"] < best[mode]["seconds"]:
                best[mode] = result

    off, det, wall = (best[mode] for mode in modes)
    recovery = {
        mode: best[mode]["publications_per_s"] / off["publications_per_s"]
        for mode in modes
    }

    print()
    print(
        f"profiler overhead ({PUBLICATIONS} publications, seed {SEED}, "
        f"best of {REPEATS}):"
    )
    for mode in modes:
        row = best[mode]
        profile = row["profile"]
        stacks = 0 if profile is None else profile.sample_count
        print(
            f"  {mode:5s} {row['publications_per_s']:8.1f} pub/s "
            f"({recovery[mode] * 100:5.1f}% of off)  {stacks:4d} distinct stacks"
        )

    # every mode delivered the same workload
    assert det["delivered"] == off["delivered"] == wall["delivered"]
    # the profiles actually saw the pipeline
    assert det["profile"].sample_count > 0
    assert any(
        stack and stack[0] not in ("unattributed",)
        for stack in det["profile"].samples
    ), "deterministic profile carries no component attribution"
    # deterministic mode replays byte-identically for the pinned seed
    replay = _run_once("det")
    assert replay["profile"].folded() == det["profile"].folded()
    # the tax claims
    assert recovery["det"] >= DET_RECOVERY_FLOOR, recovery
    assert recovery["wall"] >= WALL_RECOVERY_FLOOR, recovery

    written = bench_writer(
        "BENCH_pr10.json",
        suite="prof_overhead",
        seed=SEED,
        workload={
            "publications": PUBLICATIONS,
            "seed": SEED,
            "every": EVERY,
            "wall_hz": WALL_HZ,
            "repeats": REPEATS,
        },
        records=[
            # committed floors are looser than the in-bench asserts: the
            # gate's fresh probe re-measures on smaller workloads where
            # timing noise is proportionally larger
            BenchRecord(
                "prof.det_recovery",
                min(1.0, recovery["det"]),
                "fraction",
                floor=0.90,
                seed=SEED,
            ),
            BenchRecord(
                "prof.wall_recovery",
                min(1.0, recovery["wall"]),
                "fraction",
                floor=0.70,
                seed=SEED,
            ),
            BenchRecord(
                "prof.det_distinct_stacks",
                det["profile"].sample_count,
                "count",
            ),
            BenchRecord(
                "prof.off_publications_per_s",
                off["publications_per_s"],
                "ops/s",
            ),
        ],
    )
    if written is not None:
        print(f"wrote {written}")
