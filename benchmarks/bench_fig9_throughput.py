"""Fig. 9 — throughput over payload size at f = 5% (a) and relative (b).

Reproduces the f = 5% panels: absolute publications/second for baseline
and P3S with the limiting stage, and the relative series showing the
small-payload penalty ("P3S performs worse than the baseline for small
payloads") and large-payload parity.
"""

from repro.perf.params import MESSAGE_SIZES, PAPER_PARAMS
from repro.perf.report import format_rate, series_table
from repro.perf.throughput import baseline_throughput, p3s_throughput, throughput_ratio


def _series(params):
    base = [baseline_throughput(m, params).total for m in MESSAGE_SIZES]
    p3s = [p3s_throughput(m, params).total for m in MESSAGE_SIZES]
    ratio = [throughput_ratio(m, params) for m in MESSAGE_SIZES]
    return base, p3s, ratio


def test_fig9_throughput_f5(benchmark, capsys):
    base, p3s, ratio = benchmark(_series, PAPER_PARAMS)
    bottlenecks = [p3s_throughput(m, PAPER_PARAMS).bottleneck for m in MESSAGE_SIZES]
    with capsys.disabled():
        print()
        print(
            series_table(
                MESSAGE_SIZES,
                {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
                formatters={"baseline": format_rate, "P3S": format_rate, "ratio(b)": ".3f"},
                title="Fig. 9 — throughput, f = 5% (paper parameters)",
            )
        )
        print(f"P3S bottleneck shifts: {bottlenecks[0]} → {bottlenecks[-1]}")

    # flat small-payload region limited by the DS broadcast
    assert bottlenecks[0] == "r1_ds_broadcast"
    assert p3s[0] == p3s[1] == p3s[2]
    # large payloads: RS egress, parity with baseline
    assert bottlenecks[-1] == "r3_rs_egress"
    assert abs(ratio[-1] - 1.0) < 0.01
    # the small-payload/low-match-rate corner is where P3S loses
    assert ratio[0] < 0.1


def test_fig9_no_ns_dependence(benchmark, capsys):
    """Paper: the relative throughput does not depend on N_s for fixed f."""

    def ratios_across_ns():
        return {
            n: throughput_ratio(10_000, PAPER_PARAMS.with_(num_subscribers=n))
            for n in (25, 50, 100, 200, 400)
        }

    ratios = benchmark(ratios_across_ns)
    with capsys.disabled():
        print()
        print("Fig. 9 companion — ratio vs N_s at m=10KB:", {k: round(v, 4) for k, v in ratios.items()})
    values = list(ratios.values())
    assert max(values) - min(values) < 1e-9
