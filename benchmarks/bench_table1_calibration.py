"""Table 1: model parameters — paper values vs this reproduction's measurements.

Regenerates the parameter table driving every other experiment: the fixed
Table 1 inputs, the §6.2 prototype compute constants, and the values
measured from our own primitives (via :func:`repro.perf.calibrate`).
"""

from repro.perf.calibrate import calibrate
from repro.perf.params import PAPER_PARAMS
from repro.perf.report import format_seconds, format_size, format_table


def test_table1_report(bench_calibration, benchmark, capsys):
    """Print Table 1 with a measured column; benchmark the PBE match
    (the paper's headline 38 ms constant)."""
    measured = bench_calibration
    p = PAPER_PARAMS

    rows = [
        ["ℓ (network latency)", "45 ms", "45 ms (simulated)"],
        ["ℬ (network bandwidth)", "10 Mbps", "10 Mbps (simulated)"],
        ["P (metadata spec)", "40 bits", f"{measured.vector_bits} bits"],
        [
            "P_E (PBE-encrypted metadata)",
            "10 KB",
            format_size(measured.encrypted_metadata_bytes),
        ],
        [
            "c_A (CP-ABE overhead, 2Vk)",
            format_size(2 * p.policy_attributes * p.security_parameter_bits // 8),
            format_size(measured.cpabe_overhead_bytes),
        ],
        ["N_s (subscribers)", "100", "100 (model)"],
        ["f (match fraction)", "5 %", "5 % (model)"],
        ["V (policy attributes)", "10", str(measured.policy_attributes)],
        ["enc_P (PBE encrypt)", "≈30 ms", format_seconds(measured.pbe_encrypt_s)],
        ["t_PBE (PBE match)", "≈38 ms", format_seconds(measured.pbe_match_s)],
        ["enc_C (CP-ABE encrypt)", "≈3 ms", format_seconds(measured.cpabe_encrypt_s)],
        ["dec_C (CP-ABE decrypt)", "≈12 ms", format_seconds(measured.cpabe_decrypt_s)],
        ["pairing (1 op)", "-", format_seconds(measured.pairing_s)],
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["parameter", "paper", f"measured ({measured.param_set})"],
                rows,
                title="Table 1 — performance-model parameters",
            )
        )

    # benchmark the match operation itself
    from repro.crypto.group import PairingGroup
    from repro.pbe.hve import HVE

    group = PairingGroup(measured.param_set)
    hve = HVE(group)
    public, master = hve.setup(measured.vector_bits)
    x = [i % 2 for i in range(measured.vector_bits)]
    ciphertext = hve.encrypt(public, x, b"guid-12345678900")
    token = hve.gen_token(master, [x[i] if i < 20 else None for i in range(measured.vector_bits)])

    result = benchmark(lambda: hve.query(token, ciphertext))
    assert result == b"guid-12345678900"
