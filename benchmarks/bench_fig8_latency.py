"""Fig. 8 — end-to-end latency over payload size (a) and relative to baseline (b).

Reproduces both panels for ℬ = 10 Mbps: the absolute latency series for
the baseline and P3S, and the P3S/baseline ratio against the 10× target.
Shape assertions encode the paper's claims; absolute values use Table 1
constants (swap in measured constants with the ``calibrated`` variant).
"""

from repro.perf.latency import baseline_latency, latency_ratio, p3s_latency
from repro.perf.params import MESSAGE_SIZES, PAPER_PARAMS
from repro.perf.report import format_seconds, series_table


def _series(params):
    base = [baseline_latency(m, params).total for m in MESSAGE_SIZES]
    p3s = [p3s_latency(m, params).total for m in MESSAGE_SIZES]
    ratio = [latency_ratio(m, params) for m in MESSAGE_SIZES]
    return base, p3s, ratio


def test_fig8_latency_series(benchmark, capsys):
    base, p3s, ratio = benchmark(_series, PAPER_PARAMS)
    with capsys.disabled():
        print()
        print(
            series_table(
                MESSAGE_SIZES,
                {
                    "baseline": base,
                    "P3S": p3s,
                    "ratio(b)": ratio,
                },
                formatters={"baseline": format_seconds, "P3S": format_seconds, "ratio(b)": ".2f"},
                title="Fig. 8 — end-to-end latency, ℬ = 10 Mbps (paper parameters)",
            )
        )

    # paper claim: baseline has low latency for small payloads
    assert base[0] < p3s[0]
    # paper claim: P3S follows the baseline for large payloads
    assert abs(ratio[-1] - 1.0) < 0.1
    # paper claim: P3S exhibits a threshold for small payloads (flat region)
    assert abs(p3s[0] - p3s[1]) / p3s[0] < 0.05
    # §2 target: within 10× everywhere on this sweep
    assert max(ratio) < 10.0


def test_fig8_with_measured_constants(bench_calibration, benchmark, capsys):
    """Same figure with OUR measured crypto constants substituted."""
    params = bench_calibration.as_model_params(PAPER_PARAMS)
    base, p3s, ratio = benchmark(_series, params)
    with capsys.disabled():
        print()
        print(
            series_table(
                MESSAGE_SIZES,
                {"baseline": base, "P3S": p3s, "ratio(b)": ratio},
                formatters={"baseline": format_seconds, "P3S": format_seconds, "ratio(b)": ".2f"},
                title=f"Fig. 8 — with constants measured at {bench_calibration.param_set}",
            )
        )
    # the qualitative shape must survive recalibration
    assert base[0] < p3s[0]
    assert abs(ratio[-1] - 1.0) < 0.1
    assert max(ratio) < 10.0
