"""§6.2 micro-measurements: the prototype's crypto constants, re-measured.

The paper reports enc_P ≈ 30 ms, PBE match ≈ 38 ms, CP-ABE decrypt
≈ 12 ms, CP-ABE encrypt "fairly fast", baseline match ≈ 0.05 ms.  These
benches time the same operations on our primitives (TOY by default;
``REPRO_BENCH_PARAMS=PAPER`` for the full 512-bit measurement).
"""

import pytest

from repro.abe.hybrid import HybridCPABE
from repro.crypto.group import PairingGroup
from repro.pbe.hve import HVE

from conftest import param_set_name

VECTOR_BITS = 40  # Table 1: P = 40 bits
POLICY_ATTRIBUTES = 10  # Table 1: V = 10


@pytest.fixture(scope="module")
def setting():
    group = PairingGroup(param_set_name())
    hve = HVE(group)
    hve_public, hve_master = hve.setup(VECTOR_BITS)
    cpabe = HybridCPABE(group)
    cpabe_public, cpabe_master = cpabe.setup()
    return group, hve, hve_public, hve_master, cpabe, cpabe_public, cpabe_master


def test_pairing(setting, benchmark):
    group, *_ = setting
    p, q = group.random_g1(), group.random_g1()
    result = benchmark(lambda: group.pair(p, q))
    assert not result.is_one()


def test_pbe_encrypt(setting, benchmark):
    _, hve, hve_public, *_ = setting
    x = [i % 2 for i in range(VECTOR_BITS)]
    ciphertext = benchmark(lambda: hve.encrypt(hve_public, x, b"g" * 16))
    assert ciphertext.n == VECTOR_BITS


def test_pbe_match(setting, benchmark):
    """The paper's 38 ms constant (half-wildcard token, as a subscriber's
    conjunctive predicate typically constrains a subset of attributes)."""
    _, hve, hve_public, hve_master, *_ = setting
    x = [i % 2 for i in range(VECTOR_BITS)]
    ciphertext = hve.encrypt(hve_public, x, b"g" * 16)
    token = hve.gen_token(
        hve_master, [x[i] if i < VECTOR_BITS // 2 else None for i in range(VECTOR_BITS)]
    )
    result = benchmark(lambda: hve.query(token, ciphertext))
    assert result == b"g" * 16


def test_pbe_match_miss(setting, benchmark):
    """A non-matching test costs the same pairing work (no early exit)."""
    _, hve, hve_public, hve_master, *_ = setting
    x = [i % 2 for i in range(VECTOR_BITS)]
    ciphertext = hve.encrypt(hve_public, x, b"g" * 16)
    wrong = list(x)
    wrong[0] ^= 1
    token = hve.gen_token(
        hve_master, [wrong[i] if i < VECTOR_BITS // 2 else None for i in range(VECTOR_BITS)]
    )
    assert benchmark(lambda: hve.query(token, ciphertext)) is None


def test_pbe_token_gen(setting, benchmark):
    _, hve, _, hve_master, *_ = setting
    y = [1 if i < VECTOR_BITS // 2 else None for i in range(VECTOR_BITS)]
    token = benchmark(lambda: hve.gen_token(hve_master, y))
    assert len(token.positions) == VECTOR_BITS // 2


def test_cpabe_encrypt(setting, benchmark):
    *_, cpabe, cpabe_public, cpabe_master = setting
    policy = " and ".join(f"a{i}" for i in range(POLICY_ATTRIBUTES))
    ciphertext = benchmark(lambda: cpabe.encrypt(cpabe_public, b"x" * 1024, policy))
    assert len(ciphertext.kem.leaf_components) == POLICY_ATTRIBUTES


def test_cpabe_decrypt(setting, benchmark):
    *_, cpabe, cpabe_public, cpabe_master = setting
    attributes = {f"a{i}" for i in range(POLICY_ATTRIBUTES)}
    policy = " and ".join(sorted(attributes))
    key = cpabe.keygen(cpabe_master, attributes)
    ciphertext = cpabe.encrypt(cpabe_public, b"x" * 1024, policy)
    assert benchmark(lambda: cpabe.decrypt(key, ciphertext)) == b"x" * 1024


def test_report_vs_paper(bench_calibration, benchmark, capsys):
    """Side-by-side with the paper's §6.2 numbers."""
    from repro.perf.report import format_seconds, format_table

    measured = bench_calibration
    rows = [
        ["PBE encrypt (enc_P)", "≈30 ms", format_seconds(measured.pbe_encrypt_s)],
        ["PBE match (t_PBE)", "≈38 ms", format_seconds(measured.pbe_match_s)],
        ["CP-ABE encrypt (enc_C)", "'fairly fast' (≈3 ms)", format_seconds(measured.cpabe_encrypt_s)],
        ["CP-ABE decrypt (dec_C)", "≈12 ms", format_seconds(measured.cpabe_decrypt_s)],
        ["PKE operation", "-", format_seconds(measured.pke_op_s)],
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["operation", "paper prototype", f"this repo ({measured.param_set})"],
                rows,
                title="§6.2 crypto micro-measurements",
            )
        )
    benchmark(lambda: None)  # table-only test; trivial benchmark body
