"""Ablation: point compression on HVE ciphertexts (size vs CPU).

Compression halves the dominant P3S wire cost (P_E, broadcast to every
subscriber) at the price of one modular square root per point on
deserialization.  The paper's 2Vk size estimate assumes compressed
elements; this bench measures both sides of the trade on the Table 1
metadata shape.
"""

import pytest

from repro.crypto.group import PairingGroup
from repro.pbe.hve import HVE
from repro.pbe.serialize import deserialize_hve_ciphertext, serialize_hve_ciphertext

GROUP = PairingGroup("TOY")
N = 40  # Table 1 metadata vector
GUID = b"guid-0123456789ab"


@pytest.fixture(scope="module")
def setting():
    hve = HVE(GROUP)
    public, master = hve.setup(N)
    ciphertext = hve.encrypt(public, [i % 2 for i in range(N)], GUID)
    return hve, ciphertext


def test_serialize_uncompressed(setting, benchmark):
    _, ciphertext = setting
    benchmark(lambda: serialize_hve_ciphertext(GROUP, ciphertext))


def test_serialize_compressed(setting, benchmark):
    _, ciphertext = setting
    benchmark(lambda: serialize_hve_ciphertext(GROUP, ciphertext, compressed=True))


def test_deserialize_uncompressed(setting, benchmark):
    _, ciphertext = setting
    blob = serialize_hve_ciphertext(GROUP, ciphertext)
    benchmark(lambda: deserialize_hve_ciphertext(GROUP, blob))


def test_deserialize_compressed(setting, benchmark):
    """Pays one square root per point — the CPU side of the trade."""
    _, ciphertext = setting
    blob = serialize_hve_ciphertext(GROUP, ciphertext, compressed=True)
    benchmark(lambda: deserialize_hve_ciphertext(GROUP, blob))


def test_size_report(setting, capsys):
    _, ciphertext = setting
    plain = len(serialize_hve_ciphertext(GROUP, ciphertext))
    packed = len(serialize_hve_ciphertext(GROUP, ciphertext, compressed=True))
    with capsys.disabled():
        print(
            f"\ncompression ablation (n={N}): P_E uncompressed={plain} B, "
            f"compressed={packed} B ({plain / packed:.2f}× smaller)"
        )
    assert packed < plain * 0.6
