"""PR-2 hot path: publication fan-out across subscriber tokens.

The DS-side (or subscriber-side) matching workload is T tokens × R
publications.  Three configurations:

* **naive serial** — per-evaluation Miller loops, no caches (the pre-PR-2
  code path);
* **precomputed serial** — each token's Miller lines computed once and
  reused across the publication stream (the PR-2 serial path);
* **4-worker MatchPool** — the same precomputed evaluation fanned across
  a warmed process pool (workers and their caches are built outside the
  timed region, as a long-lived DS pool would be).

Acceptance floors (asserted): precomputed serial ≥ 1.3× naive; warmed
4-worker pool ≥ 2× naive.  On a single-core runner the pool's win comes
from worker-side precomputation caches; on multicore it compounds with
real parallelism.

``P3S_WRITE_BENCH=1`` additionally writes the measured numbers to
``BENCH_pr2.json`` at the repo root (the committed before/after record),
in the versioned schema of ``benchmarks/schema.py`` — the form
``repro perf gate`` ingests directly.
"""

from __future__ import annotations

import time

import pytest

from schema import BenchRecord

from repro.crypto.curve import clear_fixed_base_cache, set_fixed_base_enabled
from repro.crypto.group import PairingGroup
from repro.par import MatchPool
from repro.pbe.hve import HVE
from repro.pbe.serialize import serialize_hve_ciphertext, serialize_hve_token

VECTOR_BITS = 8  # n
TOKENS = 16  # T registered subscriber tokens
PUBLICATIONS = 6  # R distinct ciphertexts in the stream
CONSTRAINED = 4  # non-wildcard positions per token


@pytest.fixture(scope="module")
def workload():
    group = PairingGroup("TOY")
    hve = HVE(group)
    public, master = hve.setup(VECTOR_BITS)
    x = [i % 2 for i in range(VECTOR_BITS)]
    ciphertexts = [
        serialize_hve_ciphertext(
            group, hve.encrypt(public, x, bytes([i]) * 16)
        )
        for i in range(PUBLICATIONS)
    ]
    tokens = []
    for t in range(TOKENS):
        y: list[int | None] = [None] * VECTOR_BITS
        for j in range(CONSTRAINED):
            position = (t + j) % VECTOR_BITS
            # half the tokens match, half near-miss on one position
            y[position] = x[position] ^ (1 if (t % 2 and j == 0) else 0)
        tokens.append(serialize_hve_token(group, hve.gen_token(master, y)))
    return group, ciphertexts, tokens


def _sweep(match_fn, ciphertexts, tokens) -> tuple[float, list]:
    start = time.perf_counter()
    results = [match_fn(ct) for ct in ciphertexts]
    return time.perf_counter() - start, results


def _naive_serial(group, ciphertexts, tokens):
    from repro.pbe.serialize import deserialize_hve_ciphertext, deserialize_hve_token

    hve = HVE(group, precompute=False, match_cache_size=0)
    token_objs = [deserialize_hve_token(group, t) for t in tokens]

    def match(ct_bytes):
        ct = deserialize_hve_ciphertext(group, ct_bytes)
        return [hve.query(token, ct) for token in token_objs]

    return _sweep(match, ciphertexts, tokens)


def _precomputed_serial(group, ciphertexts, tokens):
    pool = MatchPool(group, workers=0)
    pool.start()
    pool.match(ciphertexts[0], tokens)  # warm token precomputation
    try:
        return _sweep(lambda ct: pool.match(ct, tokens), ciphertexts, tokens)
    finally:
        pool.close()


def _pool4(group, ciphertexts, tokens):
    # warm=... primes every worker's caches at startup, outside the timed
    # region — the steady state of a long-lived DS pool
    pool = MatchPool(group, workers=4, warm=(ciphertexts[0], tokens))
    pool.start()
    try:
        return _sweep(lambda ct: pool.match(ct, tokens), ciphertexts, tokens)
    finally:
        pool.close()


def _fixed_base_micro(group) -> dict:
    """Scalar-mul micro numbers: windowed ladder vs comb table."""
    import random

    rng = random.Random(0xFB)
    scalars = [rng.randrange(1, group.order) for _ in range(64)]
    g = group.generator
    set_fixed_base_enabled(False)
    start = time.perf_counter()
    for k in scalars:
        g * k
    naive_s = time.perf_counter() - start
    set_fixed_base_enabled(True)
    clear_fixed_base_cache()
    g * scalars[0]  # build the comb table outside the timed region
    start = time.perf_counter()
    for k in scalars:
        g * k
    fb_s = time.perf_counter() - start
    return {
        "scalar_muls": len(scalars),
        "windowed_s": naive_s,
        "fixed_base_s": fb_s,
        "speedup": naive_s / fb_s,
    }


def test_match_fanout_speedups(workload, capsys, bench_writer):
    group, ciphertexts, tokens = workload

    naive_s, naive_results = _naive_serial(group, ciphertexts, tokens)
    pre_s, pre_results = _precomputed_serial(group, ciphertexts, tokens)
    pool_s, pool_results = _pool4(group, ciphertexts, tokens)

    # correctness before speed: all three paths byte-identical
    assert pre_results == naive_results
    assert pool_results == naive_results

    serial_speedup = naive_s / pre_s
    pool_speedup = naive_s / pool_s
    micro = _fixed_base_micro(group)

    with capsys.disabled():
        print(
            f"\nmatch fan-out ({TOKENS} tokens × {PUBLICATIONS} publications, "
            f"n={VECTOR_BITS}):\n"
            f"  naive serial        {naive_s*1e3:8.1f} ms\n"
            f"  precomputed serial  {pre_s*1e3:8.1f} ms   ({serial_speedup:.2f}×)\n"
            f"  4-worker MatchPool  {pool_s*1e3:8.1f} ms   ({pool_speedup:.2f}×)\n"
            f"  fixed-base scalar-mul micro: {micro['speedup']:.2f}× "
            f"over {micro['scalar_muls']} muls"
        )

    # Record names match what the legacy BENCH_pr2.json normalizer emits,
    # so a re-run supersedes the committed history entry-for-entry.
    bench_writer(
        "BENCH_pr2.json",
        suite="match_fanout",
        workload={
            "vector_bits": VECTOR_BITS,
            "tokens": TOKENS,
            "publications": PUBLICATIONS,
            "constrained_positions": CONSTRAINED,
            "param_set": "TOY",
        },
        records=[
            BenchRecord(
                "match_fanout.precompute_speedup", serial_speedup, "ratio", floor=1.3
            ),
            BenchRecord("match_fanout.pool4_speedup", pool_speedup, "ratio", floor=2.0),
            BenchRecord(
                "match_fanout.fixed_base_speedup", micro["speedup"], "ratio", floor=1.5
            ),
            BenchRecord("match_fanout.naive_serial_s", naive_s, "seconds", direction="lower"),
            BenchRecord(
                "match_fanout.precomputed_serial_s", pre_s, "seconds", direction="lower"
            ),
            BenchRecord("match_fanout.pool4_s", pool_s, "seconds", direction="lower"),
        ],
    )

    # acceptance floors (ISSUE.md PR 2)
    assert serial_speedup >= 1.3, f"precompute speedup {serial_speedup:.2f}× < 1.3×"
    assert pool_speedup >= 2.0, f"4-worker pool speedup {pool_speedup:.2f}× < 2×"
