"""PR-4 live telemetry: scrape cost, exposition cost, recorder overhead.

What does it cost to watch a running deployment?  Three measurements
over a real loopback `LiveDeployment` carrying publish traffic:

* **full scrape RTT** — one `TelemetryClient.scrape()` sweep: health +
  metrics + span drain for all four services (12 authenticated RPCs)
  merged into the aggregator.  This is one refresh of `repro live top`;
* **exposition render** — `to_openmetrics` over the merged registry,
  time and output size.  This is the Prometheus scrape body;
* **flight recorder tax** — publish→deliver latency with the bounded
  ring recorder installed vs. with observability fully disabled, on the
  same deployment shape.  The delta is what always-on telemetry costs
  the data path.

Run with ``-s`` for the table; ``P3S_WRITE_BENCH=1`` writes
``BENCH_pr4.json`` at the repo root (the committed record).
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import statistics
import time

import pytest

from repro.core.config import P3SConfig
from repro.live.deployment import LiveDeployment
from repro.live.telemetry import GAUGE_METRICS
from repro.obs import Observability, parse_openmetrics, to_openmetrics
from repro.pbe.schema import AttributeSpec, Interest, MetadataSchema

pytestmark = pytest.mark.live

SCRAPE_SWEEPS = 20
TAX_PUBLICATIONS = 6
RECORDER_CAPACITY = 4096

SCHEMA = MetadataSchema(
    [AttributeSpec("topic", ("a", "b")), AttributeSpec("prio", ("lo", "hi"))]
)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _measure_scrape_and_exposition() -> tuple[dict, dict]:
    """Scrape sweeps against a deployment with live traffic behind it."""
    obs = Observability(span_capacity=RECORDER_CAPACITY)
    try:
        deployment = LiveDeployment(P3SConfig(schema=SCHEMA, obs=obs))
        await deployment.start()
        client = deployment.telemetry_client("bench")
        try:
            alice = await deployment.add_subscriber("alice", {"org"})
            await alice.subscribe(Interest({"topic": "a"}))
            publisher = await deployment.add_publisher("pub")
            for index in range(4):
                await publisher.publish(
                    {"topic": "a", "prio": "lo"}, b"t%d" % index, policy="org"
                )
            await alice.wait_for_deliveries(4, timeout_s=120.0)
            await asyncio.sleep(0.2)

            aggregator = await client.scrape()  # dials + handshakes, untimed
            samples = []
            for _ in range(SCRAPE_SWEEPS):
                started = time.perf_counter()
                aggregator = await client.scrape(aggregator)
                samples.append(time.perf_counter() - started)
            scrape = {
                "sweeps": SCRAPE_SWEEPS,
                "services": len(aggregator.services()),
                "rpcs_per_sweep": 3 * len(aggregator.services()),
                "mean_ms": statistics.mean(samples) * 1e3,
                "median_ms": statistics.median(samples) * 1e3,
                "p95_ms": _percentile(samples, 0.95) * 1e3,
            }

            registry = aggregator.merged_registry()
            started = time.perf_counter()
            text = to_openmetrics(registry, gauge_names=GAUGE_METRICS)
            render_s = time.perf_counter() - started
            parsed = parse_openmetrics(text)  # the body must round-trip
            exposition = {
                "series": len(parsed.samples),
                "bytes": len(text.encode()),
                "render_ms": render_s * 1e3,
            }
            return scrape, exposition
        finally:
            await client.close()
            await deployment.close()
    finally:
        obs.uninstall()


async def _publish_deliver_median(config: P3SConfig) -> float:
    deployment = LiveDeployment(config)
    await deployment.start()
    try:
        alice = await deployment.add_subscriber("alice", {"org"})
        await alice.subscribe(Interest({"topic": "a"}))
        publisher = await deployment.add_publisher("pub")
        samples = []
        for index in range(TAX_PUBLICATIONS):
            started = time.perf_counter()
            await publisher.publish(
                {"topic": "a", "prio": "lo"}, b"x%d" % index, policy="org"
            )
            await alice.wait_for_deliveries(index + 1, timeout_s=60.0)
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)
    finally:
        await deployment.close()


def _measure_recorder_tax() -> dict:
    """Data-path latency with the ring recorder on vs. obs fully off."""
    off_s = asyncio.run(
        asyncio.wait_for(_publish_deliver_median(P3SConfig(schema=SCHEMA)), 300.0)
    )
    obs = Observability(span_capacity=RECORDER_CAPACITY)
    try:
        on_s = asyncio.run(
            asyncio.wait_for(
                _publish_deliver_median(P3SConfig(schema=SCHEMA, obs=obs)), 300.0
            )
        )
        dropped = obs.tracer.dropped_spans
    finally:
        obs.uninstall()
    return {
        "publications": TAX_PUBLICATIONS,
        "recorder_capacity": RECORDER_CAPACITY,
        "median_off_ms": off_s * 1e3,
        "median_on_ms": on_s * 1e3,
        "overhead_pct": (on_s / off_s - 1.0) * 100.0,
        "dropped_spans": dropped,
    }


def test_live_telemetry_report(capsys):
    scrape, exposition = asyncio.run(
        asyncio.wait_for(_measure_scrape_and_exposition(), 300.0)
    )
    tax = _measure_recorder_tax()

    # sanity floors: telemetry works and is not pathologically slow
    assert scrape["services"] == 4
    assert scrape["median_ms"] < 1000.0
    assert exposition["series"] > 0

    with capsys.disabled():
        print(
            f"\nlive telemetry (loopback TCP, TOY params):\n"
            f"  full scrape sweep     median {scrape['median_ms']:7.2f} ms   "
            f"p95 {scrape['p95_ms']:7.2f} ms   "
            f"({scrape['rpcs_per_sweep']} RPCs, {scrape['sweeps']} sweeps)\n"
            f"  openmetrics render    {exposition['render_ms']:7.2f} ms   "
            f"{exposition['bytes']} bytes, {exposition['series']} series\n"
            f"  recorder tax          {tax['median_on_ms']:7.2f} ms vs "
            f"{tax['median_off_ms']:7.2f} ms publish->deliver "
            f"({tax['overhead_pct']:+.1f}%, capacity {tax['recorder_capacity']})"
        )

    if os.environ.get("P3S_WRITE_BENCH"):
        target = pathlib.Path(__file__).resolve().parents[1] / "BENCH_pr4.json"
        target.write_text(
            json.dumps(
                {
                    "workload": {
                        "param_set": "TOY",
                        "transport": "loopback TCP + AEAD records",
                        "services_scraped": 4,
                    },
                    "scrape_sweep": scrape,
                    "openmetrics_exposition": exposition,
                    "flight_recorder_tax": tax,
                },
                indent=1,
            )
            + "\n"
        )
