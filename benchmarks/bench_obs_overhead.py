"""PR-9 observability tax: what does tracing cost, and what does
tail-based sampling buy back?

One synthetic delivery pipeline — per message a publish → fan_out →
deliver span tree around a crypto-weight unit of work (iterated SHA-256,
calibrated to a few hundred microseconds: cheap relative to the real
pipeline's pairing operations, so the measured tracing tax is an upper
bound on the deployed one).  Every 100 messages the finished spans are
drained, JSON-serialized and ingested into a
:class:`~repro.obs.aggregate.TelemetryAggregator` — the full
KIND_SPANS scrape path, which is where always-on tracing actually
hurts.  Three modes:

* **off** — no tracer at all: the baseline throughput;
* **always** — every span recorded and exported (``sampler=None``);
* **sampled** — deterministic tail sampling at 1% keep: unsampled spans
  are buffered for tail promotion and never exported.

The modes run interleaved (off/always/sampled, repeated) so CPU
frequency drift hits all three equally; best-of-``REPEATS`` is scored.

Run with ``-s`` for the table; ``P3S_WRITE_BENCH=1`` writes
``BENCH_pr9.json`` at the repo root (the committed record, in the
versioned schema of ``benchmarks/schema.py``).
"""

from __future__ import annotations

import hashlib
import json
import time

from schema import BenchRecord

from repro.obs.aggregate import TelemetryAggregator
from repro.obs.sampling import TraceSampler, decision
from repro.obs.tracing import Tracer

MESSAGES = 500
PAYLOAD = b"\x5a" * 4096
HASH_ROUNDS = 160
DRAIN_EVERY = 100
REPEATS = 5
KEEP_RATE = 0.01
SEED = 9
RECOVERY_FLOOR = 0.90  # 1%-keep must recover ≥90% of tracing-off


def _work() -> int:
    """The per-message application work standing in for HVE matching."""
    digest = PAYLOAD
    for _ in range(HASH_ROUNDS):
        digest = hashlib.sha256(digest).digest() + PAYLOAD
    return digest[0]


def _make_tracer(mode: str) -> Tracer | None:
    if mode == "off":
        return None
    sampler = TraceSampler(KEEP_RATE, seed=SEED) if mode == "sampled" else None
    return Tracer(capacity=4096, sampler=sampler)


def _run_once(mode: str) -> dict:
    tracer = _make_tracer(mode)
    aggregator = TelemetryAggregator()
    exported_bytes = 0
    exported_spans = 0
    sink = 0
    start = time.perf_counter()
    for index in range(MESSAGES):
        if tracer is None:
            sink += _work()
            continue
        with tracer.span("publish", "pub"):
            with tracer.span("ds.fan_out", "ds"):
                sink += _work()
            with tracer.span("deliver", "sub"):
                pass
        if index % DRAIN_EVERY == DRAIN_EVERY - 1:
            drained = tracer.drain_finished()
            wire = json.dumps([span.to_dict() for span in drained])
            exported_bytes += len(wire)
            exported_spans += len(drained)
            aggregator.add_spans("ds", json.loads(wire), dropped=tracer.dropped_spans)
    elapsed = time.perf_counter() - start
    kept_traces = sorted(aggregator.publish_deliver_trace_latencies())
    return {
        "seconds": elapsed,
        "messages_per_s": MESSAGES / elapsed,
        "exported_spans": exported_spans,
        "exported_bytes": exported_bytes,
        "kept_traces": kept_traces,
        "sampler": dict(tracer.sampler.counters()) if tracer and tracer.sampler else None,
        "sink": sink,
    }


def test_bench_obs_overhead(bench_writer):
    modes = ("off", "always", "sampled")
    best: dict[str, dict] = {}
    for _ in range(REPEATS):
        for mode in modes:  # interleaved: frequency drift hits all modes
            result = _run_once(mode)
            if mode not in best or result["seconds"] < best[mode]["seconds"]:
                best[mode] = result

    off, always, sampled = (best[mode] for mode in modes)
    recovery = {
        mode: best[mode]["messages_per_s"] / off["messages_per_s"] for mode in modes
    }

    print()
    print(f"observability overhead ({MESSAGES} msgs, 3 spans/msg, best of {REPEATS}):")
    for mode in modes:
        row = best[mode]
        print(
            f"  {mode:8s} {row['messages_per_s']:8.0f} msg/s "
            f"({recovery[mode] * 100:5.1f}% of off)  "
            f"exported {row['exported_spans']:5d} spans / {row['exported_bytes']:7d} B"
        )

    # the claims the numbers must back, whatever the machine:
    # 1) always-on exports every span; 1%-keep exports almost none
    assert always["exported_spans"] == 3 * MESSAGES
    assert sampled["exported_spans"] < always["exported_spans"] / 10
    assert sampled["exported_bytes"] < always["exported_bytes"] / 10
    # 2) the kept trace id set is exactly the seeded head decision — the
    #    sampler is deterministic, and kept traces arrive complete
    expected_kept = [
        trace_id
        for trace_id in range(1, MESSAGES + 1)
        if decision(SEED, trace_id, KEEP_RATE)
    ]
    assert sampled["kept_traces"] == expected_kept
    assert sampled["sampler"]["kept_traces"] == len(expected_kept)
    assert sampled["sampler"]["promoted_traces"] == 0
    # 3) sampling pays for itself: 1%-keep recovers ≥90% of tracing-off
    assert recovery["sampled"] >= RECOVERY_FLOOR, recovery

    # Record names match the legacy BENCH_pr9.json normalizer, so a
    # re-run supersedes the committed history entry-for-entry.
    written = bench_writer(
        "BENCH_pr9.json",
        suite="obs_overhead",
        seed=SEED,
        workload={
            "messages": MESSAGES,
            "spans_per_message": 3,
            "payload_bytes": len(PAYLOAD),
            "hash_rounds": HASH_ROUNDS,
            "drain_every": DRAIN_EVERY,
            "repeats": REPEATS,
            "keep_rate": KEEP_RATE,
            "seed": SEED,
        },
        records=[
            BenchRecord(
                "obs_overhead.always_recovery",
                recovery["always"],
                "fraction",
                floor=0.5,
                seed=SEED,
            ),
            BenchRecord(
                "obs_overhead.sampled_recovery",
                recovery["sampled"],
                "fraction",
                floor=RECOVERY_FLOOR,
                seed=SEED,
            ),
            BenchRecord("obs_overhead.off_messages_per_s", off["messages_per_s"], "ops/s"),
            BenchRecord(
                "obs_overhead.always_exported_spans",
                always["exported_spans"],
                "count",
                direction="lower",
            ),
            BenchRecord(
                "obs_overhead.sampled_exported_spans",
                sampled["exported_spans"],
                "count",
                direction="lower",
            ),
        ],
    )
    if written is not None:
        print(f"wrote {written}")
