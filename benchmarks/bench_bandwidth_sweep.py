"""Bandwidth sweep — §6.2's companion observation to Figs. 8-10.

The abstract promises evaluation "over various message sizes and network
bandwidth settings", and §6.2 states: "increasing the network bandwidth
from 10 to 100 Mbps helps both systems equally".  This bench sweeps ℬ and
checks that (a) absolute latency and throughput improve with bandwidth
for both systems, and (b) the P3S/baseline ratios are invariant in every
bandwidth-bound regime.
"""

from repro.perf.latency import baseline_latency, latency_ratio, p3s_latency
from repro.perf.params import PAPER_PARAMS
from repro.perf.report import format_seconds, format_table
from repro.perf.throughput import throughput_ratio

BANDWIDTHS = [5_000_000, 10_000_000, 50_000_000, 100_000_000]
SIZES = [10_000, 1_000_000]


def _sweep():
    rows = []
    for bandwidth in BANDWIDTHS:
        params = PAPER_PARAMS.with_(
            bandwidth_bps=bandwidth, lan_bandwidth_bps=10 * bandwidth
        )
        for size in SIZES:
            rows.append(
                (
                    bandwidth,
                    size,
                    baseline_latency(size, params).total,
                    p3s_latency(size, params).total,
                    latency_ratio(size, params),
                    throughput_ratio(size, params),
                )
            )
    return rows


def test_bandwidth_sweep(benchmark, capsys):
    rows = benchmark(_sweep)
    table = [
        [
            f"{bw // 1_000_000} Mbps",
            f"{size // 1000} KB",
            format_seconds(base),
            format_seconds(p3s),
            f"{lat_ratio:.2f}",
            f"{thr_ratio:.3f}",
        ]
        for bw, size, base, p3s, lat_ratio, thr_ratio in rows
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["ℬ", "payload", "base lat", "P3S lat", "lat ratio", "thr ratio"],
                table,
                title="Bandwidth sweep (latency + throughput ratios)",
            )
        )

    # (a) more bandwidth → faster, for both systems, at every size
    for size_index in range(len(SIZES)):
        series = [row for row in rows if row[1] == SIZES[size_index]]
        base_latencies = [row[2] for row in series]
        p3s_latencies = [row[3] for row in series]
        assert base_latencies == sorted(base_latencies, reverse=True)
        assert p3s_latencies == sorted(p3s_latencies, reverse=True)

    # (b) "helps both systems equally": the throughput ratio at any given
    # payload size is bandwidth-invariant
    for size in SIZES:
        ratios = [row[5] for row in rows if row[1] == size]
        assert max(ratios) - min(ratios) < 1e-9

    # the latency ratio stays within the 10× target across the sweep
    assert all(row[4] < 10.0 for row in rows)
