"""Fig. 10 — throughput at f = 50%: the match-rate crossover.

"Increasing the match rate benefits P3S.  The baseline only disseminates
to subscribers who match, whereas P3S must disseminate to all of them,
and if more subscribers match, the baseline loses its advantage."
"""

from repro.perf.params import MESSAGE_SIZES, PAPER_PARAMS
from repro.perf.report import format_rate, series_table
from repro.perf.throughput import baseline_throughput, p3s_throughput, throughput_ratio

F50 = PAPER_PARAMS.with_(match_fraction=0.5)


def _series(params):
    base = [baseline_throughput(m, params).total for m in MESSAGE_SIZES]
    p3s = [p3s_throughput(m, params).total for m in MESSAGE_SIZES]
    ratio = [throughput_ratio(m, params) for m in MESSAGE_SIZES]
    return base, p3s, ratio


def test_fig10_throughput_f50(benchmark, capsys):
    base, p3s, ratio = benchmark(_series, F50)
    _, _, ratio_f5 = _series(PAPER_PARAMS)
    with capsys.disabled():
        print()
        print(
            series_table(
                MESSAGE_SIZES,
                {"baseline": base, "P3S": p3s, "ratio(b)": ratio, "ratio@f=5%": ratio_f5},
                formatters={
                    "baseline": format_rate,
                    "P3S": format_rate,
                    "ratio(b)": ".3f",
                    "ratio@f=5%": ".3f",
                },
                title="Fig. 10 — throughput, f = 50% (vs Fig. 9's f = 5%)",
            )
        )

    # at every size, f=50% treats P3S at least as well as f=5%
    assert all(r50 >= r5 - 1e-12 for r50, r5 in zip(ratio, ratio_f5))
    # near-parity arrives an order of magnitude earlier in payload size
    first_parity_f50 = next(m for m, r in zip(MESSAGE_SIZES, ratio) if r > 0.9)
    first_parity_f5 = next(m for m, r in zip(MESSAGE_SIZES, ratio_f5) if r > 0.9)
    assert first_parity_f50 <= first_parity_f5 / 5
    # combined conclusion: P3S within 10x except small payloads + low match rate
    assert all(r > 0.1 for m, r in zip(MESSAGE_SIZES, ratio) if m >= 10_000)
