"""Cross-validation bench: analytic models vs full protocol simulation.

Not a paper figure, but the strongest internal-consistency evidence this
reproduction offers: the §6.2 models and a *running deployment* (real
ciphertexts, simulated network) are evaluated at the same operating
points and must agree within a band — the models are deliberately
worst-case, so the simulation comes in at or below them.
"""

import pytest

from repro.crypto.group import PairingGroup
from repro.pbe.serialize import hve_ciphertext_size
from repro.perf.latency import baseline_latency, p3s_latency
from repro.perf.params import ModelParams
from repro.perf.report import format_seconds, format_table
from repro.perf.validation import (
    simulate_baseline_latency,
    simulate_p3s_latency,
    simulate_p3s_throughput,
)

SIZES = [1_000, 100_000, 1_000_000]


def small_model() -> ModelParams:
    group = PairingGroup("TOY")
    return ModelParams(
        num_subscribers=10,
        match_fraction=0.2,
        broker_threads=1,
        encrypted_metadata_bytes=hve_ciphertext_size(group, 3, 16),
    )


def test_latency_model_vs_simulation(benchmark, capsys):
    params = small_model()

    def run_all():
        rows = []
        for size in SIZES:
            model_b = baseline_latency(size, params).total
            sim_b = simulate_baseline_latency(size, params, 10, 2).value
            model_p = p3s_latency(size, params).total
            sim_p = simulate_p3s_latency(size, params, 10, 2).value
            rows.append((size, model_b, sim_b, model_p, sim_p))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [
        [
            f"{size//1000} KB",
            format_seconds(model_b),
            format_seconds(sim_b),
            format_seconds(model_p),
            format_seconds(sim_p),
        ]
        for size, model_b, sim_b, model_p, sim_p in rows
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["payload", "base model", "base sim", "P3S model", "P3S sim"],
                table,
                title="Model vs simulation — worst-case latency (N_s=10, f=20%)",
            )
        )
    for size, model_b, sim_b, model_p, sim_p in rows:
        assert 0.3 * model_b < sim_b < 1.5 * model_b
        assert 0.3 * model_p < sim_p < 1.5 * model_p


def test_throughput_model_vs_simulation(benchmark, capsys):
    from repro.perf.throughput import p3s_throughput

    params = small_model()

    def run():
        model = p3s_throughput(1_000, params).total
        simulated = simulate_p3s_throughput(1_000, params, 10, 2, num_publications=8).value
        return model, simulated

    model, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nthroughput at 1KB: model={model:.2f}/s, simulated={simulated:.2f}/s "
            f"(×{simulated / model:.2f})"
        )
    assert 0.3 * model < simulated < 3.0 * model
