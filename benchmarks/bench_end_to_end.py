"""End-to-end simulated deployments: P3S vs baseline, real crypto on the wire.

The §6.2 preamble measured the prototype "in various configurations such
as all parties on one physical server ... and a small number of other
participants on individual hosts".  This bench does the equivalent at
simulation scale: a deployment with real ciphertexts flowing between
hosts, reporting simulated end-to-end latency for both systems.

(Scale note: 20 subscribers rather than 100 keeps real-crypto wall time
reasonable; the analytic benches cover the at-scale numbers, and the
no-N_s-dependence result transfers the comparison.)
"""

import pytest

from repro.baseline import BaselineSystem
from repro.core import P3SConfig, P3SSystem
from repro.pbe import AttributeSpec, Interest, MetadataSchema

NUM_SUBSCRIBERS = 20
MATCHING = 4  # f = 20%
PAYLOAD = b"\x5a" * 2048


def small_schema():
    return MetadataSchema(
        [
            AttributeSpec("topic", tuple(f"t{i}" for i in range(8))),
            AttributeSpec("region", tuple(f"r{i}" for i in range(4))),
        ]
    )


def run_p3s_once() -> tuple[float, int]:
    """One publication through a full P3S deployment; returns
    (max simulated delivery latency, delivery count)."""
    system = P3SSystem(P3SConfig(schema=small_schema()))
    for index in range(NUM_SUBSCRIBERS):
        subscriber = system.add_subscriber(f"s{index}", {"org:acme"})
        wanted = "t0" if index < MATCHING else "t7"
        system.subscribe(subscriber, Interest({"topic": wanted}))
    publisher = system.add_publisher("pub")
    system.run()
    record = publisher.publish(
        {"topic": "t0", "region": "r1"}, PAYLOAD, policy="org:acme"
    )
    system.run()
    latencies = system.delivery_latencies(record)
    return max(latencies), len(latencies)


def run_baseline_once() -> tuple[float, int]:
    system = BaselineSystem()
    for index in range(NUM_SUBSCRIBERS):
        subscriber = system.add_subscriber(f"s{index}")
        wanted = "t0" if index < MATCHING else "t7"
        subscriber.subscribe(Interest({"topic": wanted}))
    system.run()
    publisher = system.add_publisher("pub")
    start = system.sim.now
    pid = publisher.publish({"topic": "t0", "region": "r1"}, PAYLOAD)
    system.run()
    deliveries = system.deliveries_for(pid)
    return max(d.delivered_at - start for d in deliveries), len(deliveries)


def test_end_to_end_p3s(benchmark, capsys):
    latency, count = benchmark.pedantic(run_p3s_once, rounds=1, iterations=1)
    assert count == MATCHING
    with capsys.disabled():
        print(f"\nP3S simulated latency (last of {count} matchers): {latency*1e3:.1f} ms")


def test_end_to_end_comparison(benchmark, capsys):
    def compare():
        p3s_latency, p3s_count = run_p3s_once()
        base_latency, base_count = run_baseline_once()
        return p3s_latency, p3s_count, base_latency, base_count

    p3s_latency, p3s_count, base_latency, base_count = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    ratio = p3s_latency / base_latency
    with capsys.disabled():
        print(
            f"\nEnd-to-end (N_s={NUM_SUBSCRIBERS}, f={MATCHING/NUM_SUBSCRIBERS:.0%}, "
            f"m={len(PAYLOAD)}B): baseline={base_latency*1e3:.1f} ms, "
            f"P3S={p3s_latency*1e3:.1f} ms, ratio={ratio:.2f}"
        )
    assert p3s_count == base_count == MATCHING
    # the paper's §2 target: within 10× of the baseline
    assert ratio < 10.0
    # and the baseline is genuinely faster (P3S pays for privacy)
    assert ratio > 1.0
