"""Benchmark-side view of the versioned record schema.

``benchmarks/`` is not a package (pytest puts this directory on
``sys.path``), so bench modules ``import schema`` to reach the shared
writer without touching ``PYTHONPATH`` gymnastics.  Everything here
re-exports :mod:`repro.perf.bench` — the single point of truth for the
record format — plus :func:`write_repo_bench`, the standard "write
``BENCH_<name>.json`` at the repo root when ``P3S_WRITE_BENCH=1``"
behaviour every bench shares.
"""

from __future__ import annotations

import os
import pathlib

from repro.perf.bench import (  # noqa: F401  (re-exports for bench modules)
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    bench_document,
    environment_fingerprint,
    git_rev,
    load_bench_file,
    load_history,
    write_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def write_repo_bench(
    filename: str,
    suite: str,
    records: list[BenchRecord],
    workload: dict | None = None,
    seed: int | None = None,
) -> pathlib.Path | None:
    """Write ``BENCH_<x>.json`` at the repo root iff ``P3S_WRITE_BENCH=1``.

    Returns the written path, or ``None`` when the committed record is
    left untouched (the default for ordinary bench runs).
    """
    if not os.environ.get("P3S_WRITE_BENCH"):
        return None
    target = REPO_ROOT / filename
    write_bench(str(target), suite, records, workload=workload, seed=seed)
    return target
