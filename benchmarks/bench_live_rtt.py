"""PR-3 live transport: loopback RTT and publish→deliver latency.

Three measurements over real TCP sockets on 127.0.0.1, all through the
full secure stack (length-prefixed frames, per-record AEAD, ECIES
handshake):

* **rpc echo RTT** — one `LiveRpcEndpoint.call` round-trip with a
  trivial handler, the floor every P3S RPC pays on this substrate;
* **publish→deliver latency** — wall time from `publish()` to the
  matching subscriber appending the opened plaintext (PBE encrypt, DS
  fan-out, CP-ABE encrypt/store, HVE match, anonymized retrieve, CP-ABE
  decrypt — every Fig. 4 arrow over its own socket);
* **pipelined throughput** — a burst of publications in flight at once,
  measured to last delivery.

The simulator wall time for the same publish→deliver scenario is
reported alongside so the cost of real sockets is visible next to the
cost of the cryptography (which dominates).

Run with ``-s`` for the table; ``P3S_WRITE_BENCH=1`` writes
``BENCH_pr3.json`` at the repo root (the committed record).
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import statistics
import time

import pytest

from repro.core.config import P3SConfig
from repro.live.channel import ServerIdentity
from repro.live.deployment import LiveDeployment
from repro.live.rpc import AddressBook, LiveRpcEndpoint
from repro.live.scenario import (
    PublicationSpec,
    Scenario,
    SubscriberSpec,
    run_on_live,
    run_on_simulator,
)
from repro.pbe.schema import AttributeSpec, Interest, MetadataSchema

pytestmark = pytest.mark.live

ECHO_CALLS = 200
LATENCY_PUBLICATIONS = 10
BURST_PUBLICATIONS = 20

SCHEMA = MetadataSchema(
    [AttributeSpec("topic", ("a", "b")), AttributeSpec("prio", ("lo", "hi"))]
)


def _config() -> P3SConfig:
    return P3SConfig(schema=SCHEMA)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _measure_echo_rtt() -> dict:
    """Raw secure-RPC round-trip over loopback, trivial handler."""
    from repro.core.ara import RegistrationAuthority
    from repro.crypto.group import PairingGroup

    group = PairingGroup("TOY")
    ara = RegistrationAuthority(group, SCHEMA)
    server = LiveRpcEndpoint(
        "svc",
        AddressBook(),
        ara_verify_key=ara.directory.ara_verify_key,
        identity=ServerIdentity.issue(ara, group, "svc"),
    )
    server.serve("echo", lambda src, msg: (msg.payload, len(msg.payload)))
    host, port = await server.start_server()
    book = AddressBook()
    book.register("svc", host, port, server.identity.service_key)
    client = LiveRpcEndpoint(
        "cli", book, ara_verify_key=ara.directory.ara_verify_key
    )
    try:
        payload = b"x" * 256
        await client.call("svc", "echo", payload)  # dial + handshake, untimed
        samples = []
        for _ in range(ECHO_CALLS):
            started = time.perf_counter()
            await client.call("svc", "echo", payload)
            samples.append(time.perf_counter() - started)
        return {
            "calls": ECHO_CALLS,
            "payload_bytes": len(payload),
            "mean_ms": statistics.mean(samples) * 1e3,
            "median_ms": statistics.median(samples) * 1e3,
            "p95_ms": _percentile(samples, 0.95) * 1e3,
        }
    finally:
        await client.close()
        await server.close()


async def _measure_publish_deliver() -> dict:
    """Serial publish→deliver wall latency through every P3S party."""
    deployment = LiveDeployment(_config())
    await deployment.start()
    try:
        alice = await deployment.add_subscriber("alice", {"org"})
        await alice.subscribe(Interest({"topic": "a"}))
        publisher = await deployment.add_publisher("pub")
        samples = []
        for index in range(LATENCY_PUBLICATIONS):
            started = time.perf_counter()
            await publisher.publish(
                {"topic": "a", "prio": "lo"}, b"p%d" % index, policy="org"
            )
            await alice.wait_for_deliveries(index + 1, timeout_s=60.0)
            samples.append(time.perf_counter() - started)
        return {
            "publications": LATENCY_PUBLICATIONS,
            "mean_ms": statistics.mean(samples) * 1e3,
            "median_ms": statistics.median(samples) * 1e3,
            "p95_ms": _percentile(samples, 0.95) * 1e3,
        }
    finally:
        await deployment.close()


async def _measure_burst_throughput() -> dict:
    """All publications in flight at once; time to the last delivery."""
    deployment = LiveDeployment(_config())
    await deployment.start()
    try:
        alice = await deployment.add_subscriber("alice", {"org"})
        await alice.subscribe(Interest({"topic": "a"}))
        publisher = await deployment.add_publisher("pub")
        started = time.perf_counter()
        await asyncio.gather(
            *(
                publisher.publish(
                    {"topic": "a", "prio": "lo"}, b"b%d" % index, policy="org"
                )
                for index in range(BURST_PUBLICATIONS)
            )
        )
        await alice.wait_for_deliveries(BURST_PUBLICATIONS, timeout_s=120.0)
        elapsed = time.perf_counter() - started
        return {
            "publications": BURST_PUBLICATIONS,
            "total_s": elapsed,
            "per_publication_ms": elapsed / BURST_PUBLICATIONS * 1e3,
            "publications_per_s": BURST_PUBLICATIONS / elapsed,
        }
    finally:
        await deployment.close()


def _measure_substrate_overhead() -> dict:
    """Same scenario on the simulator and over TCP; wall-clock both."""
    scenario = Scenario(
        subscribers=(
            SubscriberSpec("alice", frozenset({"org"}), (Interest({"topic": "a"}),)),
        ),
        publications=tuple(
            PublicationSpec(
                (("prio", "lo"), ("topic", "a")), b"s%d" % index, "org"
            )
            for index in range(5)
        ),
    )
    started = time.perf_counter()
    simulated = run_on_simulator(scenario, _config())
    sim_s = time.perf_counter() - started
    started = time.perf_counter()
    live = asyncio.run(
        asyncio.wait_for(
            run_on_live(scenario, _config(), expected=simulated, settle_s=0.0),
            120.0,
        )
    )
    live_s = time.perf_counter() - started
    assert simulated == live  # overhead numbers only count if parity holds
    return {
        "publications": 5,
        "simulator_s": sim_s,
        "live_s": live_s,
        "live_over_sim": live_s / sim_s,
    }


def test_live_rtt_report(capsys):
    echo = asyncio.run(asyncio.wait_for(_measure_echo_rtt(), 120.0))
    latency = asyncio.run(asyncio.wait_for(_measure_publish_deliver(), 300.0))
    burst = asyncio.run(asyncio.wait_for(_measure_burst_throughput(), 300.0))
    overhead = _measure_substrate_overhead()

    # sanity floors: the transport works and is not pathologically slow
    assert echo["median_ms"] < 100.0
    assert latency["publications"] == LATENCY_PUBLICATIONS
    assert burst["publications_per_s"] > 0.1

    with capsys.disabled():
        print(
            f"\nlive transport (loopback TCP, TOY params):\n"
            f"  rpc echo RTT          median {echo['median_ms']:7.2f} ms   "
            f"p95 {echo['p95_ms']:7.2f} ms   ({echo['calls']} calls)\n"
            f"  publish -> deliver    median {latency['median_ms']:7.2f} ms   "
            f"p95 {latency['p95_ms']:7.2f} ms   "
            f"({latency['publications']} serial publications)\n"
            f"  burst x{burst['publications']:<3d}           "
            f"{burst['publications_per_s']:7.2f} pub/s   "
            f"({burst['per_publication_ms']:.1f} ms each pipelined)\n"
            f"  substrate overhead    live {overhead['live_s']:.2f} s vs "
            f"sim {overhead['simulator_s']:.2f} s "
            f"({overhead['live_over_sim']:.2f}x, same 5-publication scenario)"
        )

    if os.environ.get("P3S_WRITE_BENCH"):
        target = pathlib.Path(__file__).resolve().parents[1] / "BENCH_pr3.json"
        target.write_text(
            json.dumps(
                {
                    "workload": {
                        "param_set": "TOY",
                        "transport": "loopback TCP + AEAD records",
                        "schema_attributes": 2,
                    },
                    "rpc_echo_rtt": echo,
                    "publish_deliver_latency": latency,
                    "burst_throughput": burst,
                    "substrate_overhead": overhead,
                },
                indent=1,
            )
            + "\n"
        )
