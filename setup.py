"""Legacy setup shim — see the note at the top of pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "P3S: a privacy preserving publish-subscribe middleware "
        "(MIDDLEWARE 2012) — full Python reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=2.8"],
)
